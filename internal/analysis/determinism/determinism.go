// Package determinism enforces the bit-identical-merge discipline of
// the shard-and-merge pipeline (core.OutcomeRecord streams,
// episteme.ShardIndex verdicts, fabric's fan-in): outputs that are
// digested, serialized, or diffed across machines must not depend on
// Go's randomized map iteration order or on ambient nondeterminism.
//
// Two rules:
//
//  1. Map-order leaks: a `range` statement over a map whose body
//     reaches a serialization or digest sink — a hash write, a JSON
//     encode, an fmt.Fprint* or io.Writer write, or one of the repo's
//     own stream writers (WriteVerdicts, WriteShardIndex, RunShard,
//     ComputeDigest, digest chaining) — emits in randomized order.
//     Reported everywhere: any output produced under map iteration is
//     un-diffable, and the merge invariants compare streams byte for
//     byte.
//
//  2. Ambient nondeterminism in the pipeline packages (internal/core,
//     internal/episteme): calls to time.Now or to math/rand's global
//     (unseeded) top-level functions. Explicitly seeded *rand.Rand
//     values are deterministic and allowed anywhere.
//
// The escape hatch is a //eba:nondeterministic-ok comment on the exact
// offending line (a rationale after the marker is encouraged). A
// suppression that no longer suppresses anything is itself reported as
// stale, so waivers cannot outlive the code they excused.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/ebautil"
	"repro/internal/analysis/suppress"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag randomized map iteration feeding serialization/digest sinks, and " +
		"time.Now/global math/rand in the digest-to-merge pipeline packages " +
		"(suppress a reviewed line with //eba:nondeterministic-ok)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// pipelinePkgs are the packages in which ambient nondeterminism
// (time.Now, global math/rand) is forbidden outright: everything they
// produce is digested and merged.
var pipelinePkgs = []string{"internal/core", "internal/episteme"}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := suppress.Collect(pass, "nondeterministic")

	inPipeline := false
	for _, s := range pipelinePkgs {
		if ebautil.PathHasSuffix(pass.Pkg.Path(), s) {
			inPipeline = true
			break
		}
	}

	report := func(pos ast.Node, format string, args ...interface{}) {
		if sup.Suppressed(pass.Fset, pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if sink := findSink(pass.TypesInfo, n.Body); sink != "" {
				report(n, "map iteration order reaches %s: ranging over a map emits in randomized order, breaking the byte-identical merge contract (collect and sort the keys, or suppress with //eba:nondeterministic-ok)", sink)
			}
		case *ast.CallExpr:
			if !inPipeline {
				return
			}
			fn := ebautil.FuncObj(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			path := fn.Pkg().Path()
			if path == "time" && fn.Name() == "Now" {
				report(n, "time.Now in a digest-to-merge pipeline package: record wall-clock data outside the digested stream, or suppress with //eba:nondeterministic-ok")
				return
			}
			if (path == "math/rand" || path == "math/rand/v2") && isGlobalRand(fn) {
				report(n, "global math/rand in a digest-to-merge pipeline package is seeded nondeterministically: thread an explicitly seeded *rand.Rand instead, or suppress with //eba:nondeterministic-ok")
			}
		}
	})

	sup.ReportStale(pass)
	return nil, nil
}

// isGlobalRand reports whether fn is a top-level math/rand function
// (rand.Intn, rand.Int63n, ...) as opposed to a method on an
// explicitly seeded *rand.Rand.
func isGlobalRand(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	// Constructors and plumbing are fine; it is drawing values from the
	// shared, nondeterministically seeded source that is flagged.
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8", "Seed":
		return false
	}
	return true
}

// findSink scans a range body for the first serialization or digest
// sink and returns a description of it, or "".
func findSink(info *types.Info, body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink = sinkName(info, call)
		return sink == ""
	})
	return sink
}

// repoSinks are the repo's own stream/digest writers, matched by
// package-path suffix and name.
var repoSinks = []struct{ pkg, name, desc string }{
	{"internal/fabric", "WriteVerdicts", "the deterministic verdict writer"},
	{"internal/episteme", "WriteShardIndex", "the shard-index writer"},
	{"internal/episteme", "Digest", "the shard-index digest"},
	{"internal/core", "RunShard", "the outcome-stream writer"},
	{"internal/core", "ComputeDigest", "the outcome-record digest"},
	{"internal/core", "add", "the stripe digest chain"},
}

func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := ebautil.FuncObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	switch {
	case path == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln"):
		return "fmt." + name
	case path == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
		return "json." + name
	case path == "encoding/json" && isMethod && name == "Encode":
		return "json.Encoder.Encode"
	}

	if isMethod && (name == "Write" || name == "WriteString" || name == "Sum") {
		recv := sig.Recv().Type()
		if isHashType(recv) {
			return "a hash write (" + recv.String() + ")"
		}
	}
	// Writes through an io.Writer-typed value: the emitted stream's
	// order is the iteration order.
	if isMethod && name == "Write" && isIOWriterIface(sig.Recv().Type()) {
		return "an io.Writer write"
	}

	for _, s := range repoSinks {
		if s.name != name {
			continue
		}
		if fn.Pkg() != nil && ebautil.PathHasSuffix(path, s.pkg) {
			return s.desc
		}
	}
	return ""
}

// isHashType reports whether t is declared in a crypto or hash
// package (sha256 digests, crc32, fnv, ...).
func isHashType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return strings.HasPrefix(p, "crypto/") || p == "hash" || strings.HasPrefix(p, "hash/")
}

// isIOWriterIface reports whether t is the io.Writer interface type
// itself (a concrete buffer's Write is covered only when it is also a
// hash; plain local buffers are often reordered after the fact).
func isIOWriterIface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil && obj.Pkg().Path() == "io"
}
