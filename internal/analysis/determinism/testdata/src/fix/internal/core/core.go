// Package core's fixture path ends in internal/core, so the ambient
// nondeterminism rule (time.Now, global math/rand) applies to it.
package core

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a digest-to-merge pipeline package`
}

func jitter() int {
	return rand.Intn(10) // want `global math/rand in a digest-to-merge pipeline package`
}

// Drawing from an explicitly seeded source is deterministic.
func seeded(r *rand.Rand) int {
	return r.Intn(10)
}

func newSeeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func suppressedStamp() int64 {
	return time.Now().Unix() //eba:nondeterministic-ok: diagnostics-only field, never digested
}
