package det

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

func leakOrder(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// hash.Hash's Write is the embedded io.Writer's Write, so it reports
// under the io.Writer description.
func hashOrder(m map[string]string) []byte {
	h := sha256.New()
	for k := range m { // want `map iteration order reaches an io.Writer write`
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

func digestOrder(m map[string]string) []byte {
	h := sha256.New()
	var sum []byte
	for k := range m { // want `map iteration order reaches a hash write`
		sum = h.Sum([]byte(k))
	}
	return sum
}

func encodeOrder(enc *json.Encoder, m map[int][]string) {
	for _, vs := range m { // want `map iteration order reaches json.Encoder.Encode`
		enc.Encode(vs)
	}
}

func sortedOrder(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// json.Marshal of a whole map is fine: encoding/json sorts map keys.
func marshalWhole(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}

func suppressedOrder(w io.Writer, m map[string]int) {
	for k := range m { //eba:nondeterministic-ok: singleton map, reviewed
		fmt.Fprintln(w, k)
	}
}

func wrongLine(w io.Writer, m map[string]int) {
	//eba:nondeterministic-ok: on the wrong line, so it waives nothing // want `stale //eba:nondeterministic-ok suppression: no diagnostic on this line to suppress`
	for k := range m { // want `map iteration order reaches fmt.Fprintln`
		fmt.Fprintln(w, k)
	}
}
