package determinism_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	atest.Run(t, "testdata", determinism.Analyzer, "fix/det", "fix/internal/core")
}
