// Package suppress implements ebavet's escape-hatch comments. A
// diagnostic is suppressed by a //eba:<kind>-ok comment on the exact
// line it would be reported on — either a trailing comment on that line
// or a full-line comment of its own on that line (not the line above).
// A suppression that suppresses nothing is itself a diagnostic: stale
// escape hatches rot into silent blanket waivers, so the analyzer
// rejects them the moment the code they excused goes away.
package suppress

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Directive is one suppression comment found in the package.
type Directive struct {
	Pos  token.Pos // position of the comment
	File string
	Line int
	used bool
}

// Set holds the package's suppression directives for one comment kind.
type Set struct {
	marker     string
	directives []*Directive
}

// Collect scans every file in the pass for //eba:<kind>-ok comments.
// Text after the marker (a rationale) is allowed: "//eba:foo-ok: the
// map is a singleton" still suppresses.
func Collect(pass *analysis.Pass, kind string) *Set {
	marker := "//eba:" + kind + "-ok"
	s := &Set{marker: marker}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text != marker && !strings.HasPrefix(text, marker+" ") && !strings.HasPrefix(text, marker+":") {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				s.directives = append(s.directives, &Directive{
					Pos:  c.Pos(),
					File: p.Filename,
					Line: p.Line,
				})
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is excused by a
// directive on the same line of the same file, and marks that
// directive as used.
func (s *Set) Suppressed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	hit := false
	for _, d := range s.directives {
		if d.File == p.Filename && d.Line == p.Line {
			d.used = true
			hit = true
		}
	}
	return hit
}

// ReportStale diagnoses every directive that suppressed nothing. Call
// it after the analyzer has visited all its reporting sites.
func (s *Set) ReportStale(pass *analysis.Pass) {
	for _, d := range s.directives {
		if !d.used {
			pass.Reportf(d.Pos, "stale %s suppression: no diagnostic on this line to suppress", s.marker)
		}
	}
}
