package spec

import (
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/model"
)

// ownInit decides the agent's own initial value immediately: violates
// Agreement whenever initial values differ.
type ownInit struct{}

func (ownInit) Name() string { return "PownInit" }
func (ownInit) Act(_ model.AgentID, s model.State) model.Action {
	if s.Decided().IsSet() {
		return model.Noop
	}
	return model.Decide(s.Init())
}

// flipFlop decides 0 in round 1 and 1 in round 2: violates Unique Decision.
type flipFlop struct{}

func (flipFlop) Name() string { return "PflipFlop" }
func (flipFlop) Act(_ model.AgentID, s model.State) model.Action {
	switch s.Time() {
	case 0:
		return model.Decide0
	case 1:
		return model.Decide1
	default:
		return model.Noop
	}
}

// alwaysOne decides 1 immediately regardless of inputs: violates Validity
// on all-0 runs.
type alwaysOne struct{}

func (alwaysOne) Name() string { return "PalwaysOne" }
func (alwaysOne) Act(_ model.AgentID, s model.State) model.Action {
	if s.Decided().IsSet() {
		return model.Noop
	}
	return model.Decide1
}

// never decides: violates Termination.
type never struct{}

func (never) Name() string { return "Pnever" }
func (never) Act(model.AgentID, model.State) model.Action {
	return model.Noop
}

func run(t *testing.T, p model.ActionProtocol, inits []model.Value) *engine.Result {
	t.Helper()
	n := len(inits)
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   p,
		Pattern:  adversary.FailureFree(n, 3),
		Inits:    inits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hasViolation(vs []Violation, property string) bool {
	for _, v := range vs {
		if v.Property == property {
			return true
		}
	}
	return false
}

func TestCleanRunHasNoViolations(t *testing.T) {
	res := run(t, action.NewMin(1), []model.Value{model.Zero, model.One, model.One})
	if vs := CheckRun(res, Options{RoundBound: 3, ValidityAllAgents: true}); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}

func TestAgreementViolationDetected(t *testing.T) {
	res := run(t, ownInit{}, []model.Value{model.Zero, model.One, model.One})
	vs := CheckRun(res, Options{})
	if !hasViolation(vs, "Agreement") {
		t.Errorf("agreement violation not detected: %v", vs)
	}
}

func TestUniqueDecisionViolationDetected(t *testing.T) {
	res := run(t, flipFlop{}, []model.Value{model.One, model.One})
	vs := CheckRun(res, Options{})
	if !hasViolation(vs, "UniqueDecision") {
		t.Errorf("unique-decision violation not detected: %v", vs)
	}
}

func TestValidityViolationDetected(t *testing.T) {
	res := run(t, alwaysOne{}, []model.Value{model.Zero, model.Zero})
	vs := CheckRun(res, Options{})
	if !hasViolation(vs, "Validity") {
		t.Errorf("validity violation not detected: %v", vs)
	}
}

func TestValidityAllAgentsOption(t *testing.T) {
	// Make the only misbehaving decider faulty: default options skip it,
	// the strong form catches it.
	n := 3
	pat := adversary.Silent(n, 3, 0)
	inits := []model.Value{model.Zero, model.Zero, model.Zero}
	res, err := engine.Run(engine.Config{
		Exchange: exchange.NewMin(n),
		Action:   alwaysOne{},
		Pattern:  pat,
		Inits:    inits,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All agents decide 1 here, so agreement holds but validity fails for
	// everyone; restrict attention to the faulty agent by checking that
	// the strong form reports at least one more violation.
	weak := CheckRun(res, Options{})
	strong := CheckRun(res, Options{ValidityAllAgents: true})
	if len(strong) <= len(weak) {
		t.Errorf("strong validity (%d violations) should exceed weak (%d)", len(strong), len(weak))
	}
}

func TestTerminationViolationDetected(t *testing.T) {
	res := run(t, never{}, []model.Value{model.One, model.One})
	vs := CheckRun(res, Options{})
	if !hasViolation(vs, "Termination") {
		t.Errorf("termination violation not detected: %v", vs)
	}
}

func TestRoundBoundViolationDetected(t *testing.T) {
	// Pmin with t=1 decides all-1 runs in round 3; a bound of 2 must trip.
	res := run(t, action.NewMin(1), []model.Value{model.One, model.One, model.One})
	vs := CheckRun(res, Options{RoundBound: 2})
	if !hasViolation(vs, "RoundBound") {
		t.Errorf("round-bound violation not detected: %v", vs)
	}
	if hasViolation(CheckRun(res, Options{RoundBound: 3}), "RoundBound") {
		t.Error("round bound 3 should pass")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: "Agreement", Agent: 2, Detail: "x"}
	if got := v.String(); !strings.Contains(got, "Agreement") || !strings.Contains(got, "2") {
		t.Errorf("String() = %q", got)
	}
}

func TestCheckAllPrefixesRunIndex(t *testing.T) {
	bad := run(t, never{}, []model.Value{model.One, model.One})
	good := run(t, action.NewMin(1), []model.Value{model.One, model.One})
	msgs := CheckAll([]*engine.Result{good, bad}, Options{})
	if len(msgs) == 0 || !strings.HasPrefix(msgs[0], "run 1:") {
		t.Errorf("CheckAll output %v", msgs)
	}
}

// corresponding builds corresponding run sets for two protocol stacks over
// the same patterns and inits.
func corresponding(t *testing.T, n, tf int) (runsBasic, runsMin []*engine.Result) {
	t.Helper()
	patterns := []*model.Pattern{
		adversary.FailureFree(n, tf+2),
		adversary.Silent(n, tf+2, 0),
	}
	ivs, err := adversary.NewInitVectors(n)
	if err != nil {
		t.Fatal(err)
	}
	for inits, ok := ivs.Next(); ok; inits, ok = ivs.Next() {
		iv := append([]model.Value(nil), inits...)
		for _, pat := range patterns {
			rb, err := engine.Run(engine.Config{
				Exchange: exchange.NewBasic(n), Action: action.NewBasic(n),
				Pattern: pat, Inits: iv,
			})
			if err != nil {
				t.Fatal(err)
			}
			rm, err := engine.Run(engine.Config{
				Exchange: exchange.NewMin(n), Action: action.NewMin(tf),
				Pattern: pat, Inits: iv,
			})
			if err != nil {
				t.Fatal(err)
			}
			runsBasic = append(runsBasic, rb)
			runsMin = append(runsMin, rm)
		}
	}
	return runsBasic, runsMin
}

func TestPbasicDominatesPminOnTheseRuns(t *testing.T) {
	// On failure-free and silent-adversary runs, P_basic never decides
	// later than P_min and is strictly earlier on the all-1 run — the §8
	// comparison. (This is run-set dominance, not the full order.)
	runsBasic, runsMin := corresponding(t, 4, 1)
	dom, err := CompareRuns(runsBasic, runsMin)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Dominates {
		t.Fatalf("Pbasic decided later than Pmin: %s", dom.FirstCounterexample)
	}
	if !dom.Strictly() {
		t.Error("expected strict improvement on the all-1 run")
	}
	// And the converse does not dominate.
	rev, err := CompareRuns(runsMin, runsBasic)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Dominates {
		t.Error("Pmin should not dominate Pbasic on these runs")
	}
	if rev.FirstCounterexample == "" {
		t.Error("expected a counterexample for the reverse comparison")
	}
}

func TestCompareRunsValidatesCorrespondence(t *testing.T) {
	a := run(t, action.NewMin(1), []model.Value{model.One, model.One})
	b := run(t, action.NewMin(1), []model.Value{model.Zero, model.One})
	if _, err := CompareRuns([]*engine.Result{a}, []*engine.Result{b}); err == nil {
		t.Error("mismatched inits accepted")
	}
	if _, err := CompareRuns([]*engine.Result{a}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	c, err := engine.Run(engine.Config{
		Exchange: exchange.NewMin(2), Action: action.NewMin(1),
		Pattern: adversary.Silent(2, 3, 0), Inits: []model.Value{model.One, model.One},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareRuns([]*engine.Result{a}, []*engine.Result{c}); err == nil {
		t.Error("mismatched patterns accepted")
	}
}

func TestSelfDominanceIsNonStrict(t *testing.T) {
	runsA, _ := corresponding(t, 3, 1)
	dom, err := CompareRuns(runsA, runsA)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Dominates || dom.Strictly() {
		t.Errorf("self comparison should dominate non-strictly: %+v", dom)
	}
}
