// Package spec checks completed runs against the EBA specification of
// Section 5 — Unique Decision, Agreement, Validity, Termination — and
// implements the dominance order on action protocols from which the
// paper's optimality notion is built.
package spec

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/model"
)

// Violation describes one specification breach in one run.
type Violation struct {
	// Property is the violated clause: "UniqueDecision", "Agreement",
	// "Validity", "Termination", or "RoundBound".
	Property string
	// Agent is the offending agent (the first of the pair, for Agreement).
	Agent model.AgentID
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s(agent %d): %s", v.Property, v.Agent, v.Detail)
}

// Options tunes the checks.
type Options struct {
	// RoundBound, if positive, additionally requires every nonfaulty agent
	// to decide in a round ≤ RoundBound (the paper proves t+2 for all its
	// protocols).
	RoundBound int
	// ValidityAllAgents checks Validity for faulty deciders too
	// (Proposition 6.1 shows the paper's protocols satisfy this stronger
	// form).
	ValidityAllAgents bool
}

// CheckRun returns every violation of the EBA specification in the run.
// A nil result means the run satisfies the specification.
func CheckRun(res *engine.Result, opts Options) []Violation {
	var out []Violation
	out = append(out, checkUniqueDecision(res)...)
	out = append(out, checkAgreement(res)...)
	out = append(out, checkValidity(res, opts)...)
	out = append(out, checkTermination(res, opts)...)
	return out
}

// checkUniqueDecision scans the action trace: an agent that performs
// decide(v) must never later perform decide(1−v).
func checkUniqueDecision(res *engine.Result) []Violation {
	var out []Violation
	for i := 0; i < res.N; i++ {
		first := model.None
		for m := range res.Actions {
			d := res.Actions[m][i].Decision()
			if !d.IsSet() {
				continue
			}
			if first == model.None {
				first = d
				continue
			}
			if d != first {
				out = append(out, Violation{
					Property: "UniqueDecision",
					Agent:    model.AgentID(i),
					Detail:   fmt.Sprintf("decided %v and later %v (round %d)", first, d, m+1),
				})
				break
			}
		}
	}
	return out
}

// checkAgreement requires all nonfaulty decided values to coincide.
func checkAgreement(res *engine.Result) []Violation {
	var out []Violation
	firstAgent := model.AgentID(-1)
	firstVal := model.None
	for i := 0; i < res.N; i++ {
		id := model.AgentID(i)
		if !res.Pattern.Nonfaulty(id) {
			continue
		}
		v := res.Decided(id)
		if v == model.None {
			continue
		}
		if firstVal == model.None {
			firstAgent, firstVal = id, v
			continue
		}
		if v != firstVal {
			out = append(out, Violation{
				Property: "Agreement",
				Agent:    firstAgent,
				Detail: fmt.Sprintf("nonfaulty agents %d and %d decided %v and %v",
					firstAgent, id, firstVal, v),
			})
		}
	}
	return out
}

// checkValidity requires every decided value to be some agent's initial
// preference.
func checkValidity(res *engine.Result, opts Options) []Violation {
	present := map[model.Value]bool{}
	for _, v := range res.Inits {
		present[v] = true
	}
	var out []Violation
	for i := 0; i < res.N; i++ {
		id := model.AgentID(i)
		if !opts.ValidityAllAgents && !res.Pattern.Nonfaulty(id) {
			continue
		}
		v := res.Decided(id)
		if v == model.None || present[v] {
			continue
		}
		out = append(out, Violation{
			Property: "Validity",
			Agent:    id,
			Detail:   fmt.Sprintf("decided %v but no agent held it initially", v),
		})
	}
	return out
}

// checkTermination requires every nonfaulty agent to have decided within
// the run's horizon, and within Options.RoundBound if set.
func checkTermination(res *engine.Result, opts Options) []Violation {
	var out []Violation
	for i := 0; i < res.N; i++ {
		id := model.AgentID(i)
		if !res.Pattern.Nonfaulty(id) {
			continue
		}
		r := res.Round(id)
		if r == 0 {
			out = append(out, Violation{
				Property: "Termination",
				Agent:    id,
				Detail:   fmt.Sprintf("undecided after %d rounds", res.Horizon),
			})
			continue
		}
		if opts.RoundBound > 0 && r > opts.RoundBound {
			out = append(out, Violation{
				Property: "RoundBound",
				Agent:    id,
				Detail:   fmt.Sprintf("decided in round %d, bound %d", r, opts.RoundBound),
			})
		}
	}
	return out
}

// CheckAll runs CheckRun over a batch and aggregates violations, prefixing
// each with its run index.
func CheckAll(results []*engine.Result, opts Options) []string {
	var out []string
	for idx, res := range results {
		for _, v := range CheckRun(res, opts) {
			out = append(out, fmt.Sprintf("run %d: %s", idx, v))
		}
	}
	return out
}

// Dominance summarizes the comparison of two action protocols over a set
// of corresponding runs (same initial states, same failure patterns).
type Dominance struct {
	// Dominates reports whether P decides no later than Q for every
	// nonfaulty agent in every corresponding run (the paper's Q ≤ P).
	Dominates bool
	// StrictCount counts (run, agent) pairs where P decided strictly
	// earlier than Q.
	StrictCount int
	// FirstCounterexample describes the first (run, agent) where P decided
	// later than Q, if any.
	FirstCounterexample string
}

// Strictly reports whether P strictly dominates Q on the compared runs:
// never later, at least once strictly earlier.
func (d Dominance) Strictly() bool { return d.Dominates && d.StrictCount > 0 }

// CompareRuns computes the dominance relation between protocol P (runsP)
// and protocol Q (runsQ) over corresponding runs. The two slices must have
// equal length and matching (pattern, inits) pairs, in the same order.
func CompareRuns(runsP, runsQ []*engine.Result) (Dominance, error) {
	if len(runsP) != len(runsQ) {
		return Dominance{}, fmt.Errorf("spec: %d vs %d runs", len(runsP), len(runsQ))
	}
	dom := Dominance{Dominates: true}
	for idx := range runsP {
		rp, rq := runsP[idx], runsQ[idx]
		if rp.Pattern.Key() != rq.Pattern.Key() {
			return Dominance{}, fmt.Errorf("spec: run %d patterns do not correspond", idx)
		}
		if len(rp.Inits) != len(rq.Inits) {
			return Dominance{}, fmt.Errorf("spec: run %d init lengths differ", idx)
		}
		for i := range rp.Inits {
			if rp.Inits[i] != rq.Inits[i] {
				return Dominance{}, fmt.Errorf("spec: run %d inits do not correspond", idx)
			}
		}
		for i := 0; i < rp.N; i++ {
			id := model.AgentID(i)
			if !rp.Pattern.Nonfaulty(id) {
				continue
			}
			p, q := rp.Round(id), rq.Round(id)
			switch {
			case p == 0:
				// P never decides: the dominance condition is vacuous for
				// this agent (and P is then not an EBA protocol anyway).
			case q == 0 || p < q:
				dom.StrictCount++
			case p > q:
				dom.Dominates = false
				if dom.FirstCounterexample == "" {
					dom.FirstCounterexample = fmt.Sprintf(
						"run %d agent %d: P decided in round %d, Q in round %d", idx, i, p, q)
				}
			}
		}
	}
	return dom, nil
}
