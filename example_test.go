package eba_test

import (
	"context"
	"fmt"

	eba "repro"
)

// The basic protocol stack reaching agreement with a silent faulty agent.
func Example() {
	stack, _ := eba.NewStack("basic", eba.WithN(5), eba.WithT(2))
	pattern := eba.Silent(5, stack.Horizon(), 0) // agent 0 faulty and silent
	inits := []eba.Value{eba.Zero, eba.One, eba.One, eba.One, eba.One}

	res, err := stack.Run(pattern, inits)
	if err != nil {
		panic(err)
	}
	for i := 1; i < 5; i++ {
		fmt.Printf("agent %d: %v in round %d\n",
			i, res.Decided(eba.AgentID(i)), res.Round(eba.AgentID(i)))
	}
	// Output:
	// agent 1: 1 in round 3
	// agent 2: 1 in round 3
	// agent 3: 1 in round 3
	// agent 4: 1 in round 3
}

// Example 7.1 of the paper: full information converts two rounds of
// silence into common knowledge and decides in round 3, where the
// limited-information protocols must wait until round t+2.
func ExampleFIP() {
	n, t := 6, 3
	pattern := eba.Example71(n, t, t+2)
	inits := eba.UniformInits(n, eba.One)

	fipStack, _ := eba.NewStack("fip", eba.WithN(n), eba.WithT(t))
	minStack, _ := eba.NewStack("min", eba.WithN(n), eba.WithT(t))
	fip, _ := fipStack.Run(pattern, inits)
	min, _ := minStack.Run(pattern, inits)
	fmt.Println("fip decides in round", fip.MaxDecisionRound(true))
	fmt.Println("min decides in round", min.MaxDecisionRound(true))
	// Output:
	// fip decides in round 3
	// min decides in round 5
}

// Checking a completed run against the EBA specification of Section 5.
func ExampleCheckRun() {
	stack, _ := eba.NewStack("min", eba.WithN(3), eba.WithT(1))
	res, _ := stack.Run(eba.FailureFree(3, stack.Horizon()),
		[]eba.Value{eba.Zero, eba.One, eba.One})
	violations := eba.CheckRun(res, eba.SpecOptions{
		RoundBound:        stack.Horizon(),
		ValidityAllAgents: true,
	})
	fmt.Println("violations:", len(violations))
	// Output:
	// violations: 0
}

// The dominance order underlying the paper's optimality notion: on the
// all-1 failure-free run, the basic exchange strictly beats the minimal
// one.
func ExampleCompareRuns() {
	n, t := 4, 1
	scenarios := []eba.Scenario{
		{Pattern: eba.FailureFree(n, t+2), Inits: eba.UniformInits(n, eba.One)},
	}
	basic, _ := eba.NewStack("basic", eba.WithN(n), eba.WithT(t))
	min, _ := eba.NewStack("min", eba.WithN(n), eba.WithT(t))
	ctx := context.Background()
	runsBasic, _ := eba.NewRunner(basic, eba.WithBufferReuse()).RunBatch(ctx, scenarios)
	runsMin, _ := eba.NewRunner(min, eba.WithBufferReuse()).RunBatch(ctx, scenarios)
	dom, _ := eba.CompareRuns(runsBasic, runsMin)
	fmt.Println("basic strictly dominates min here:", dom.Strictly())
	// Output:
	// basic strictly dominates min here: true
}
