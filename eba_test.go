package eba_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	eba "repro"
)

// mustStack builds a registered stack through the public constructor.
func mustStack(t *testing.T, name string, n, tf int) eba.Stack {
	t.Helper()
	st, err := eba.NewStack(name, eba.WithN(n), eba.WithT(tf))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPublicQuickstart(t *testing.T) {
	stack := mustStack(t, "basic", 5, 2)
	pattern := eba.Silent(5, stack.Horizon(), 0)
	inits := []eba.Value{eba.One, eba.One, eba.Zero, eba.One, eba.One}
	res, err := stack.Run(pattern, inits)
	if err != nil {
		t.Fatal(err)
	}
	if vs := eba.CheckRun(res, eba.SpecOptions{RoundBound: stack.Horizon()}); len(vs) != 0 {
		t.Fatalf("spec violations: %v", vs)
	}
	for i := 1; i < 5; i++ {
		if res.Decided(eba.AgentID(i)) != eba.Zero {
			t.Errorf("agent %d decided %v, want 0", i, res.Decided(eba.AgentID(i)))
		}
	}
}

func TestPublicPatternsAndModels(t *testing.T) {
	if eba.SO(2).String() != "SO(2)" || eba.Crash(1).String() != "crash(1)" {
		t.Error("model re-exports broken")
	}
	p := eba.Example71(6, 3, 5)
	if err := eba.SO(3).Admits(p); err != nil {
		t.Errorf("Example71 pattern rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := eba.SO(2).Admits(eba.RandomSO(rng, 5, 2, 4, 0.5)); err != nil {
		t.Error(err)
	}
	if err := eba.Crash(2).Admits(eba.RandomCrash(rng, 5, 2, 4)); err != nil {
		t.Error(err)
	}
	fresh := eba.NewPattern(3, 2)
	if fresh.NumFaulty() != 0 {
		t.Error("NewPattern should be failure-free")
	}
}

func TestPublicDominance(t *testing.T) {
	n, tf := 4, 1
	basic, min := mustStack(t, "basic", n, tf), mustStack(t, "min", n, tf)
	scenarios := []eba.Scenario{
		{Pattern: eba.FailureFree(n, tf+2), Inits: eba.UniformInits(n, eba.One)},
		{Pattern: eba.FailureFree(n, tf+2), Inits: []eba.Value{eba.Zero, eba.One, eba.One, eba.One}},
	}
	runsB, err := eba.NewRunner(basic, eba.WithBufferReuse()).RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	runsM, err := eba.NewRunner(min, eba.WithBufferReuse()).RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := eba.CompareRuns(runsB, runsM)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Strictly() {
		t.Errorf("Basic should strictly dominate Min on these scenarios: %+v", dom)
	}
}

func TestPublicFIPStack(t *testing.T) {
	stack := mustStack(t, "fip", 6, 3)
	res, err := stack.Run(eba.Example71(6, 3, stack.Horizon()), eba.UniformInits(6, eba.One))
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if res.Round(eba.AgentID(i)) != 3 {
			t.Errorf("agent %d decided in round %d, want 3 (Example 7.1)", i, res.Round(eba.AgentID(i)))
		}
	}
}

func TestPublicVerifyImplementation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bad, err := eba.VerifyImplementation(context.Background(), mustStack(t, "min", 3, 1), eba.ProgramP0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("Pmin should implement P0: %v", bad)
	}
	// The minimal protocol run over the FIP exchange is NOT an
	// implementation of P1 (it ignores what full information offers).
	mixed := mustStack(t, "fip", 3, 1)
	mixed.Action = mustStack(t, "min", 3, 1).Action
	bad, err = eba.VerifyImplementation(context.Background(), mixed, eba.ProgramP1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Error("Pmin over Efip should not implement P1")
	}
}

func TestPublicVerifyOptimality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bad, err := eba.VerifyOptimality(context.Background(), mustStack(t, "fip", 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("Popt should be optimal: %v", bad)
	}
	bad, err = eba.VerifyOptimality(context.Background(), mustStack(t, "fip-nock", 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// At t=1 the ablation coincides with P_opt (see episteme tests), so
	// it passes here too; the check exercises the public path either way.
	_ = bad
}

func TestPublicRegistryConstruction(t *testing.T) {
	// Every registered pairing — including the pairings the old fixed
	// constructors could not reach — is constructible by name and runs.
	names := eba.StackNames()
	if len(names) != 6 {
		t.Fatalf("StackNames() = %v, want 6 names", names)
	}
	pat := eba.Silent(4, 3, 0)
	inits := eba.UniformInits(4, eba.One)
	for _, name := range names {
		stack, err := eba.NewStack(name, eba.WithN(4), eba.WithT(1))
		if err != nil {
			t.Fatalf("NewStack(%q): %v", name, err)
		}
		if stack.Name != name {
			t.Errorf("NewStack(%q).Name = %q", name, stack.Name)
		}
		res, err := eba.NewRunner(stack).Run(context.Background(),
			eba.Scenario{Pattern: pat, Inits: inits})
		if err != nil {
			t.Fatalf("run %q: %v", name, err)
		}
		if res.N != 4 {
			t.Errorf("%q ran %d agents, want 4", name, res.N)
		}
	}
	if len(eba.ExchangeNames()) != 4 || len(eba.ActionNames()) != 5 {
		t.Errorf("component listings: %v / %v", eba.ExchangeNames(), eba.ActionNames())
	}
	for _, info := range eba.Stacks() {
		if info.Description == "" {
			t.Errorf("stack %q has no description", info.Name)
		}
	}
}

func TestPublicComposeReachesEveryPairing(t *testing.T) {
	// The acceptance criterion: fip+pmin, previously unreachable from the
	// facade, composes and is dominated by fip on Example 7.1.
	n, tf := 6, 3
	pat := eba.Example71(n, tf, tf+2)
	inits := eba.UniformInits(n, eba.One)
	sc := eba.Scenario{Pattern: pat, Inits: inits}
	ctx := context.Background()

	fipmin, err := eba.Compose("fip", "pmin", eba.WithN(n), eba.WithT(tf))
	if err != nil {
		t.Fatal(err)
	}
	if fipmin.Name != "fip+pmin" {
		t.Errorf("composed name = %q, want fip+pmin", fipmin.Name)
	}
	rMin, err := eba.NewRunner(fipmin).Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	fip, err := eba.NewStack("fip", eba.WithN(n), eba.WithT(tf))
	if err != nil {
		t.Fatal(err)
	}
	rOpt, err := eba.NewRunner(fip).Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Same exchange, different action protocol: Popt exploits common
	// knowledge and decides in round 3, Pmin waits out t+2.
	if rOpt.MaxDecisionRound(true) != 3 || rMin.MaxDecisionRound(true) != tf+2 {
		t.Errorf("fip decided round %d (want 3), fip+pmin round %d (want %d)",
			rOpt.MaxDecisionRound(true), rMin.MaxDecisionRound(true), tf+2)
	}
	if _, err := eba.Compose("min", "popt"); err == nil {
		t.Error("incompatible pairing accepted")
	}
}

func TestPublicRunnerBatchAndStream(t *testing.T) {
	n, tf := 5, 2
	stack, err := eba.NewStack("basic", eba.WithN(n), eba.WithT(tf))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	scenarios := make([]eba.Scenario, 12)
	for k := range scenarios {
		inits := make([]eba.Value, n)
		for i := range inits {
			inits[i] = eba.Value(rng.Intn(2))
		}
		scenarios[k] = eba.Scenario{
			Pattern: eba.RandomSO(rng, n, tf, tf+2, 0.4),
			Inits:   inits,
		}
	}
	ctx := context.Background()
	runner := eba.NewRunner(stack,
		eba.WithExecutor(eba.Sequential),
		eba.WithParallelism(4),
		eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon()}),
		eba.WithBufferReuse())
	batch, err := runner.RunBatch(ctx, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for k, sc := range scenarios {
		want, err := stack.Run(sc.Pattern, sc.Inits)
		if err != nil {
			t.Fatal(err)
		}
		if batch[k].Stats != want.Stats {
			t.Fatalf("batch result %d diverges from the sequential path", k)
		}
	}
	next := 0
	for oc := range runner.Stream(ctx, scenarios) {
		if oc.Err != nil {
			t.Fatal(oc.Err)
		}
		if oc.Index != next {
			t.Fatalf("stream emitted %d, want %d", oc.Index, next)
		}
		next++
	}
	if next != len(scenarios) {
		t.Fatalf("stream emitted %d outcomes, want %d", next, len(scenarios))
	}
}

func TestPublicNaiveIsBroken(t *testing.T) {
	// The exported counterexample stack must still violate agreement under
	// the introduction's adversary (E13 in miniature).
	stack := mustStack(t, "naive", 3, 1)
	pat := eba.NewPattern(3, stack.Horizon())
	pat.Silence(0, 0, stack.Horizon())
	// Rebuild with the single late delivery, as in the intro's run r′.
	pat2 := eba.NewPattern(3, stack.Horizon())
	for m := 0; m < stack.Horizon(); m++ {
		for j := 1; j < 3; j++ {
			if m == 1 && j == 2 {
				continue
			}
			pat2.Drop(m, 0, eba.AgentID(j))
		}
	}
	res, err := stack.Run(pat2, []eba.Value{eba.Zero, eba.One, eba.One})
	if err != nil {
		t.Fatal(err)
	}
	vs := eba.CheckRun(res, eba.SpecOptions{})
	found := false
	for _, v := range vs {
		if v.Property == "Agreement" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an Agreement violation, got %v", vs)
	}
}

func TestPublicBuildSystemParallelism(t *testing.T) {
	// The public checker options: explicit parallelism never changes the
	// verdicts, and the built system serves all three checkers.
	ctx := context.Background()
	stack := eba.MustStack("fip", eba.WithN(3), eba.WithT(1))
	seq, err := eba.BuildSystem(ctx, stack, eba.WithCheckParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := eba.BuildSystem(ctx, stack, eba.WithCheckParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(seq.Runs), len(par.Runs))
	}
	msSeq, err := seq.CheckImplements(ctx, eba.ProgramP1, 0)
	if err != nil {
		t.Fatal(err)
	}
	msPar, err := par.CheckImplements(ctx, eba.ProgramP1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msSeq) != 0 || len(msPar) != 0 {
		t.Errorf("Popt/P1 mismatches: seq=%d par=%d, want 0", len(msSeq), len(msPar))
	}
}

func TestPublicCheckCancellation(t *testing.T) {
	cause := errors.New("cancelled by test")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := eba.BuildSystem(ctx, eba.MustStack("min", eba.WithN(3), eba.WithT(1))); !errors.Is(err, cause) {
		t.Fatalf("BuildSystem error = %v, want the cancellation cause", err)
	}
}
