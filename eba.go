// Package eba is a Go implementation of the protocols of Alpturer,
// Halpern, and van der Meyden, "Optimal Eventual Byzantine Agreement
// Protocols with Omission Failures" (PODC 2023): eventual Byzantine
// agreement under sending-omission failures with limited information
// exchange.
//
// The package exposes the paper's three protocol stacks —
//
//	Min(n, t)   — the minimal exchange with P_min (n² bits per run)
//	Basic(n, t) — the basic exchange with P_basic (O(n²t) bits)
//	FIP(n, t)   — full information with P_opt, the polynomial-time optimal
//	              protocol that settles the open problem of Halpern,
//	              Moses, and Waarts (SIAM J. Comput. 2001)
//
// — together with failure-pattern builders, a deterministic round engine,
// a concurrent goroutine runtime, an EBA specification checker, and an
// epistemic model checker that can verify the paper's implementation and
// optimality theorems on small systems.
//
// # Quickstart
//
//	stack := eba.Basic(5, 2)
//	pattern := eba.Silent(5, stack.Horizon(), 0) // agent 0 faulty & silent
//	inits := []eba.Value{eba.One, eba.One, eba.Zero, eba.One, eba.One}
//	res, err := stack.Run(pattern, inits)
//	// res.Decision, res.DecisionRound, res.Stats ...
//
// Implementation detail lives under internal/: model (the formal objects),
// exchange and action (the protocols), graph (communication graphs and the
// polynomial-time analysis behind P_opt), engine and runtime (execution),
// adversary (failure patterns), spec (the EBA specification), episteme
// (the model checker), and experiments (the paper's evaluation tables).
package eba

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/episteme"
	"repro/internal/model"
	"repro/internal/spec"
)

// Re-exported core types.
type (
	// Value is a consensus value: Zero, One, or None (the paper's ⊥).
	Value = model.Value
	// AgentID identifies an agent (0-based).
	AgentID = model.AgentID
	// ActionKind is a protocol action: Noop, Decide0, or Decide1.
	ActionKind = model.Action
	// Pattern is a failure pattern: the nonfaulty set plus the dropped
	// messages (the paper's adversary).
	Pattern = model.Pattern
	// FailureModel is SO(t) or Crash(t).
	FailureModel = model.FailureModel
	// Result is a completed run: trace, decision ledger, traffic stats.
	Result = engine.Result
	// Stack is a protocol stack: exchange + action protocol.
	Stack = core.Stack
	// Scenario is one (pattern, inits) input for corresponding runs.
	Scenario = core.Scenario
	// Violation is one EBA specification breach.
	Violation = spec.Violation
	// SpecOptions tunes specification checking.
	SpecOptions = spec.Options
	// System is an interpreted system built by exhaustive enumeration.
	System = episteme.System
	// Program identifies a knowledge-based program (ProgramP0/ProgramP1).
	Program = episteme.Program
)

// Consensus values.
const (
	// Zero is the consensus value 0.
	Zero = model.Zero
	// One is the consensus value 1.
	One = model.One
	// None is the paper's ⊥.
	None = model.None
)

// Knowledge-based programs.
const (
	// ProgramP0 is the paper's P0 (Section 6).
	ProgramP0 = episteme.P0
	// ProgramP1 is the paper's P1 (Section 7).
	ProgramP1 = episteme.P1
)

// Min returns the minimal protocol stack ⟨Emin(n), P_min⟩, optimal with
// respect to the minimal information exchange (Corollary 6.7).
func Min(n, t int) Stack { return core.Min(n, t) }

// Basic returns the basic protocol stack ⟨Ebasic(n), P_basic⟩, optimal
// with respect to the basic information exchange (Corollary 6.7).
func Basic(n, t int) Stack { return core.Basic(n, t) }

// FIP returns the full-information stack ⟨Efip(n), P_opt⟩, optimal with
// respect to full information exchange (Corollary 7.8) and polynomial
// time (Proposition 7.9).
func FIP(n, t int) Stack { return core.FIP(n, t) }

// FIPNoCK returns the ablated full-information stack: P_opt without the
// common-knowledge guards, i.e. the knowledge-based program P0 over full
// information. Correct but not optimal.
func FIPNoCK(n, t int) Stack { return core.FIPNoCK(n, t) }

// Naive returns the introduction's counterexample stack, which violates
// Agreement under omission failures. Use it to reproduce the paper's
// impossibility argument, not to reach agreement.
func Naive(n, t int) Stack { return core.Naive(n, t) }

// SO returns the sending-omissions failure model with at most t faults.
func SO(t int) FailureModel { return model.SO(t) }

// Crash returns the crash failure model with at most t faults.
func Crash(t int) FailureModel { return model.Crash(t) }

// NewPattern returns a failure-free pattern for n agents and the given
// horizon (number of rounds for which drops may be specified).
func NewPattern(n, horizon int) *Pattern { return model.NewPattern(n, horizon) }

// FailureFree returns the pattern with no faulty agents.
func FailureFree(n, horizon int) *Pattern { return adversary.FailureFree(n, horizon) }

// Silent returns a pattern where the listed agents are faulty and never
// deliver a message.
func Silent(n, horizon int, agents ...AgentID) *Pattern {
	return adversary.Silent(n, horizon, agents...)
}

// Example71 returns the adversary of the paper's Example 7.1: agents
// 0..t-1 faulty and silent.
func Example71(n, t, horizon int) *Pattern { return adversary.Example71(n, t, horizon) }

// RandomSO returns a seeded random SO(t) pattern; each message from a
// faulty agent is dropped independently with probability dropProb.
func RandomSO(rng *rand.Rand, n, t, horizon int, dropProb float64) *Pattern {
	return adversary.RandomSO(rng, n, t, horizon, dropProb)
}

// RandomCrash returns a seeded random crash(t) pattern.
func RandomCrash(rng *rand.Rand, n, t, horizon int) *Pattern {
	return adversary.RandomCrash(rng, n, t, horizon)
}

// UniformInits returns an n-vector of identical initial preferences.
func UniformInits(n int, v Value) []Value { return adversary.UniformInits(n, v) }

// CheckRun verifies a completed run against the EBA specification of
// Section 5 (Unique Decision, Agreement, Validity, Termination).
func CheckRun(res *Result, opts SpecOptions) []Violation { return spec.CheckRun(res, opts) }

// CompareRuns computes the dominance relation between two protocols'
// corresponding run sets (the order underlying the paper's optimality).
func CompareRuns(runsP, runsQ []*Result) (spec.Dominance, error) {
	return spec.CompareRuns(runsP, runsQ)
}

// Dominance is the result of CompareRuns.
type Dominance = spec.Dominance

// VerifyImplementation machine-checks that the stack's action protocol
// implements the given knowledge-based program in the stack's EBA context
// (Theorems 6.5, 6.6, A.21), by exhaustive enumeration of every failure
// pattern and initial assignment. Exponential: small n and t only. The
// returned strings describe disagreements; empty means verified.
func VerifyImplementation(stack Stack, prog Program) ([]string, error) {
	sys, err := stack.BuildSystem()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range sys.CheckImplements(prog, 10) {
		out = append(out, m.String())
	}
	return out, nil
}

// VerifyOptimality machine-checks the Theorem 7.5 optimality
// characterization for a full-information stack by exhaustive enumeration.
// The returned strings describe violations; empty means the stack's
// decisions are optimal with respect to full information exchange.
func VerifyOptimality(stack Stack) ([]string, error) {
	sys, err := stack.BuildSystem()
	if err != nil {
		return nil, err
	}
	return sys.CheckOptimalityFIP(-1, 10), nil
}
