// Package eba is a Go implementation of the protocols of Alpturer,
// Halpern, and van der Meyden, "Optimal Eventual Byzantine Agreement
// Protocols with Omission Failures" (PODC 2023): eventual Byzantine
// agreement under sending-omission failures with limited information
// exchange.
//
// The paper's central move is treating a protocol as a *pair*
// ⟨information exchange E, action protocol P⟩; the package makes that
// pairing a first-class operation. Stacks are constructed by name from a
// registry of exchanges, action protocols, and their valid pairings —
//
//	min      = ⟨Emin,  Pmin⟩      — n² bits per run
//	basic    = ⟨Ebasic, Pbasic⟩    — O(n²t) bits
//	fip      = ⟨Efip,  Popt⟩      — the polynomial-time optimum that
//	           settles the open problem of Halpern, Moses, and Waarts
//	           (SIAM J. Comput. 2001)
//	fip+pmin = ⟨Efip,  Pmin⟩      — correct-but-dominated baseline
//	fip-nock = ⟨Efip,  Popt-nock⟩ — the common-knowledge ablation
//	naive    = ⟨Ereport, Pnaive⟩   — the introduction's counterexample
//
// — and executed through a Runner over a sequential or concurrent
// substrate, one scenario at a time or as an order-preserving parallel
// batch. Failure-pattern builders, an EBA specification checker, and an
// epistemic model checker that can verify the paper's implementation and
// optimality theorems on small systems round out the API.
//
// # Quickstart
//
//	stack, _ := eba.NewStack("basic", eba.WithN(5), eba.WithT(2))
//	pattern := eba.Silent(5, stack.Horizon(), 0) // agent 0 faulty & silent
//	inits := []eba.Value{eba.One, eba.One, eba.Zero, eba.One, eba.One}
//	runner := eba.NewRunner(stack)
//	res, err := runner.Run(ctx, eba.Scenario{Pattern: pattern, Inits: inits})
//	// res.Decision, res.DecisionRound, res.Stats ...
//
// Batches fan out over a worker pool and stay deterministic:
//
//	runner = eba.NewRunner(stack, eba.WithParallelism(8), eba.WithBufferReuse())
//	results, err := runner.RunBatch(ctx, scenarios) // results[k] ↔ scenarios[k]
//
// Any registry-valid ⟨exchange, action⟩ pairing the paper discusses is
// constructible with Compose, e.g. eba.Compose("fip", "pmin") for the
// full-information exchange driven by the minimal decision rule.
//
// Implementation detail lives under internal/: model (the formal objects),
// exchange and action (the protocols), registry (the component catalogue),
// graph (communication graphs and the polynomial-time analysis behind
// P_opt), engine and runtime (execution), adversary (failure patterns),
// spec (the EBA specification), episteme (the model checker), and
// experiments (the paper's evaluation tables).
package eba

import (
	"context"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/episteme"
	"repro/internal/model"
	"repro/internal/spec"
)

// Re-exported core types.
type (
	// Value is a consensus value: Zero, One, or None (the paper's ⊥).
	Value = model.Value
	// AgentID identifies an agent (0-based).
	AgentID = model.AgentID
	// ActionKind is a protocol action: Noop, Decide0, or Decide1.
	ActionKind = model.Action
	// Pattern is a failure pattern: the nonfaulty set plus the dropped
	// messages (the paper's adversary).
	Pattern = model.Pattern
	// FailureModel is SO(t) or Crash(t).
	FailureModel = model.FailureModel
	// Result is a completed run: trace, decision ledger, traffic stats.
	Result = engine.Result
	// Stack is a protocol stack: exchange + action protocol.
	Stack = core.Stack
	// Scenario is one (pattern, inits) input for corresponding runs.
	Scenario = core.Scenario
	// Violation is one EBA specification breach.
	Violation = spec.Violation
	// SpecOptions tunes specification checking.
	SpecOptions = spec.Options
	// System is an interpreted system built by exhaustive enumeration.
	System = episteme.System
	// Program identifies a knowledge-based program (ProgramP0/ProgramP1).
	Program = episteme.Program
)

// Consensus values.
const (
	// Zero is the consensus value 0.
	Zero = model.Zero
	// One is the consensus value 1.
	One = model.One
	// None is the paper's ⊥.
	None = model.None
)

// Knowledge-based programs.
const (
	// ProgramP0 is the paper's P0 (Section 6).
	ProgramP0 = episteme.P0
	// ProgramP1 is the paper's P1 (Section 7).
	ProgramP1 = episteme.P1
)

// SO returns the sending-omissions failure model with at most t faults.
func SO(t int) FailureModel { return model.SO(t) }

// Crash returns the crash failure model with at most t faults.
func Crash(t int) FailureModel { return model.Crash(t) }

// NewPattern returns a failure-free pattern for n agents and the given
// horizon (number of rounds for which drops may be specified).
func NewPattern(n, horizon int) *Pattern { return model.NewPattern(n, horizon) }

// FailureFree returns the pattern with no faulty agents.
func FailureFree(n, horizon int) *Pattern { return adversary.FailureFree(n, horizon) }

// Silent returns a pattern where the listed agents are faulty and never
// deliver a message.
func Silent(n, horizon int, agents ...AgentID) *Pattern {
	return adversary.Silent(n, horizon, agents...)
}

// Example71 returns the adversary of the paper's Example 7.1: agents
// 0..t-1 faulty and silent.
func Example71(n, t, horizon int) *Pattern { return adversary.Example71(n, t, horizon) }

// RandomSO returns a seeded random SO(t) pattern; each message from a
// faulty agent is dropped independently with probability dropProb.
func RandomSO(rng *rand.Rand, n, t, horizon int, dropProb float64) *Pattern {
	return adversary.RandomSO(rng, n, t, horizon, dropProb)
}

// RandomCrash returns a seeded random crash(t) pattern.
func RandomCrash(rng *rand.Rand, n, t, horizon int) *Pattern {
	return adversary.RandomCrash(rng, n, t, horizon)
}

// AdversarySpecSyntax documents the spec-string forms ParseAdversary
// accepts, for CLI help text.
const AdversarySpecSyntax = adversary.SpecSyntax

// ParseAdversary builds a failure pattern from a CLI-style spec string:
// "none", "example71", "random" (uses seed and drop), or "silent:<ids>".
// Like stack names, the forms live in one place so command-line tools
// cannot drift from the library.
func ParseAdversary(spec string, n, t, horizon int, seed int64, drop float64) (*Pattern, error) {
	return adversary.Parse(spec, n, t, horizon, seed, drop)
}

// UniformInits returns an n-vector of identical initial preferences.
func UniformInits(n int, v Value) []Value { return adversary.UniformInits(n, v) }

// CheckRun verifies a completed run against the EBA specification of
// Section 5 (Unique Decision, Agreement, Validity, Termination).
func CheckRun(res *Result, opts SpecOptions) []Violation { return spec.CheckRun(res, opts) }

// CompareRuns computes the dominance relation between two protocols'
// corresponding run sets (the order underlying the paper's optimality).
func CompareRuns(runsP, runsQ []*Result) (spec.Dominance, error) {
	return spec.CompareRuns(runsP, runsQ)
}

// Dominance is the result of CompareRuns.
type Dominance = spec.Dominance

// CheckOption tunes the model checker: WithCheckParallelism.
type CheckOption = episteme.Option

// WithCheckParallelism sets the model checker's worker count: run
// execution, index interning, C_N condensation, and the checkers' point
// loops all shard over k workers. k <= 0 (and the default) means one
// worker per available CPU. Results are independent of k — every parallel
// path reassembles its output in the canonical enumeration order.
func WithCheckParallelism(k int) CheckOption { return episteme.WithParallelism(k) }

// WithCheckQuotient makes BuildSystem and BuildShardIndex enumerate only
// one canonical representative per agent-permutation orbit
// (SourceQuotient) — up to n! fewer protocol executions. BuildSystem
// transparently expands the representative system back to the full one,
// so every verdict is bit-identical to the unquotiented build's;
// BuildShardIndex exports a quotiented stripe, and the expansion happens
// once after MergeSystems (ExpandQuotient). The stack's exchange must
// support key permutation (fip does; min and basic do not) — builds over
// other exchanges fail rather than mis-intern.
func WithCheckQuotient() CheckOption { return episteme.WithQuotient() }

// BuildSystem builds the stack's interpreted system by exhaustive
// enumeration of every failure pattern and initial assignment in the
// stack's EBA context (small n and t only — the construction is
// exponential). Runs stream through the same Runner worker pool RunBatch
// uses; ctx cancels the build, and WithCheckParallelism tunes it. The
// returned System serves the knowledge checks (CheckImplements,
// CheckSafety, CheckOptimalityFIP) and is safe for concurrent use.
func BuildSystem(ctx context.Context, stack Stack, opts ...CheckOption) (*System, error) {
	return episteme.BuildSystem(ctx, episteme.ContextFor(stack), stack.Action, opts...)
}

// VerifyImplementation machine-checks that the stack's action protocol
// implements the given knowledge-based program in the stack's EBA context
// (Theorems 6.5, 6.6, A.21), by exhaustive enumeration of every failure
// pattern and initial assignment. Exponential: small n and t only. The
// returned strings describe disagreements (at most 10, with a truncation
// notice when more were found); empty means verified.
func VerifyImplementation(ctx context.Context, stack Stack, prog Program, opts ...CheckOption) ([]string, error) {
	sys, err := BuildSystem(ctx, stack, opts...)
	if err != nil {
		return nil, err
	}
	ms, err := sys.CheckImplements(ctx, prog, 10)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range ms {
		out = append(out, m.String())
	}
	return out, nil
}

// VerifyOptimality machine-checks the Theorem 7.5 optimality
// characterization for a full-information stack by exhaustive enumeration.
// The returned strings describe violations (at most 10, with a truncation
// notice when more were found); empty means the stack's decisions are
// optimal with respect to full information exchange.
func VerifyOptimality(ctx context.Context, stack Stack, opts ...CheckOption) ([]string, error) {
	sys, err := BuildSystem(ctx, stack, opts...)
	if err != nil {
		return nil, err
	}
	return sys.CheckOptimalityFIP(ctx, -1, 10)
}
