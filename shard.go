package eba

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/source"
)

// Deterministic shard-and-merge: run one sweep as K cooperating
// processes. A Source enumerates scenarios in one canonical order;
// SourceStride splits that order into K modular stripes, so K processes
// constructing the same source cover the sweep exactly once with no
// coordination. Runner.RunShard executes a stripe and emits a
// self-describing outcome stream; MergeOutcomes fans K streams back into
// canonical order, verifying the stripes partition the sweep (no gaps,
// no overlaps) — the merged stream is byte-identical to a single-process
// run's. BuildShardIndex and MergeSystems do the same for the model
// checker: per-shard interned indexes, merged by canonical class key
// into a System with bit-identical verdicts. cmd/ebashard drives both
// from the command line.

// SourceStride returns stripe shardIndex of a deterministic
// shardCount-way modular split of the source: the scenarios at global
// ordinals shardIndex, shardIndex+shardCount, … of the source's own
// enumeration order. The shardCount stripes partition the sweep exactly,
// so K processes each running one stripe of the same source reproduce a
// single-process sweep run for run. It composes with the other
// combinators (SourceLimit before Stride stripes the truncated sweep;
// after, it truncates the stripe).
func SourceStride(src Source, shardIndex, shardCount int) (Source, error) {
	return source.Stride(src, shardIndex, shardCount)
}

// ShardSpec names one stripe of a deterministically split sweep ("i/k").
// The zero value is the whole sweep. It implements flag.Value and
// encoding.TextMarshaler/TextUnmarshaler, so it round-trips through
// flags, environment variables, and config files; cmd/ebashard reads its
// default from $EBA_SHARD.
type ShardSpec = source.ShardSpec

// ParseShardSpec parses the "i/k" form; the empty string is the whole
// sweep (0/1).
func ParseShardSpec(s string) (ShardSpec, error) { return source.ParseShardSpec(s) }

// ShardEnvVar is the conventional environment variable sharded tools
// read a default ShardSpec from.
const ShardEnvVar = source.ShardEnvVar

// Outcome-stream types re-exported from core: Runner.RunShard writes a
// stream of these, MergeOutcomes verifies and fans K of them back in.
type (
	// ShardHeader opens a shard's outcome stream.
	ShardHeader = core.ShardHeader
	// OutcomeRecord is one digested scenario outcome of a sharded sweep.
	OutcomeRecord = core.OutcomeRecord
	// ShardFooter seals a stream with its record count and chained digest.
	ShardFooter = core.ShardFooter
	// ShardSummary reports a completed Runner.RunShard.
	ShardSummary = core.ShardSummary
	// MergeSummary reports a completed MergeOutcomes.
	MergeSummary = core.MergeSummary
	// OutcomeReader decodes and verifies one shard's outcome stream.
	OutcomeReader = core.OutcomeReader
	// ErrorSource is a Source that can fail mid-stream; StreamFrom
	// propagates its error as the stream's cancellation cause.
	ErrorSource = core.ErrorSource
)

// NewOutcomeReader decodes one shard's outcome stream, verifying record
// digests and the sealing footer as it reads.
func NewOutcomeReader(r io.Reader) (*OutcomeReader, error) { return core.NewOutcomeReader(r) }

// MergeOutcomes fans K shard outcome streams (in any order) back into
// the canonical enumeration order, verifying that they partition the
// sweep exactly: consistent headers, K distinct stripes, intact digests,
// ordinals covering 0..total-1 with no gap and no overlap, sealed
// footers. When w is non-nil the merged stream is written to it as the
// single stripe of a 1-way split — byte-identical to what one process
// running the whole sweep writes, so sharded and unsharded runs compare
// with cmp(1).
func MergeOutcomes(w io.Writer, streams ...io.Reader) (*MergeSummary, error) {
	return core.MergeOutcomes(w, streams...)
}

// ShardIndex is one shard's serializable contribution to a sharded model
// check: its stripe's runs (reduced to decision ledgers) plus the
// interned (time, agent) class tables keyed by canonical local-state
// fingerprints.
type ShardIndex = episteme.ShardIndex

// BuildShardIndex enumerates stripe shardIndex of a shardCount-way split
// of the stack's exhaustive sweep — exactly the stripe of the
// enumeration BuildSystem performs whole — and exports the stripe's
// interned index for MergeSystems.
func BuildShardIndex(ctx context.Context, stack Stack, shardIndex, shardCount int, opts ...CheckOption) (*ShardIndex, error) {
	idx, err := episteme.BuildShardIndex(ctx, episteme.ContextFor(stack), stack.Action, shardIndex, shardCount, opts...)
	if err != nil {
		return nil, err
	}
	idx.Stack = stack.Name
	return idx, nil
}

// MergeSystems re-interns K partial indexes (one per stripe, any order)
// into one System whose class tables and verdicts — CheckImplements,
// CheckSafety, CheckOptimalityFIP — are bit-identical to the
// single-process BuildSystem's. It verifies the stripes partition one
// sweep: K distinct shards of a K-way split agreeing on (n, t, horizon),
// with stripe lengths consistent with one total. Merged Systems carry no
// state traces: System.Key and every checker ride the interned index.
func MergeSystems(ctx context.Context, shards []*ShardIndex, opts ...CheckOption) (*System, error) {
	return episteme.MergeSystems(ctx, shards, opts...)
}

// ExpandQuotient rebuilds the full interpreted system from a
// symmetry-quotiented one — the System MergeSystems returns when the
// shards were built with WithCheckQuotient. The expansion re-enumerates
// the stack's sweep without executing it, synthesizing each run and its
// interned local-state classes from the run's orbit representative via
// agent relabeling; the result is bit-identical to the unquotiented
// BuildSystem's, so every verdict downstream agrees with the full sweep.
// stack must be the stack the shards enumerated (the expansion
// cross-checks every orbit and fails loudly on a mismatch).
func ExpandQuotient(ctx context.Context, sys *System, stack Stack) (*System, error) {
	return episteme.ExpandQuotient(ctx, sys, episteme.ContextFor(stack))
}

// WriteShardIndex serializes a shard index as JSON; ReadShardIndex is
// its inverse.
func WriteShardIndex(w io.Writer, idx *ShardIndex) error { return episteme.WriteShardIndex(w, idx) }

// ReadShardIndex deserializes and validates a WriteShardIndex stream.
func ReadShardIndex(r io.Reader) (*ShardIndex, error) { return episteme.ReadShardIndex(r) }
