package eba

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/source"
)

// Source is a pull-style stream of scenarios, the lazy counterpart of a
// []Scenario: Next yields the next scenario or false when exhausted,
// Count reports the total if known. Feed one to Runner.StreamFrom or
// Runner.RunSource to drive a sweep without materializing it — memory
// stays bounded by the Runner's reordering window however many scenarios
// the source produces. Sources are single-consumer; the Runner pulls from
// one goroutine.
type Source = core.Source

// StreamOption configures Runner.StreamFrom: WithWindow, and
// WithCompletionOrder.
type StreamOption = core.StreamOption

// WithWindow bounds the reordering window of an ordered stream: at most k
// scenarios are in flight at any moment, so the re-sequencing buffer
// holds at most k outcomes no matter how long the head scenario runs. The
// default is twice the worker count.
func WithWindow(k int) StreamOption { return core.WithWindow(k) }

// WithCompletionOrder makes StreamFrom emit outcomes as workers finish
// them instead of re-sequencing into scenario order: nothing is buffered,
// a slow scenario delays only itself, and every outcome still carries its
// scenario Index for correlation.
func WithCompletionOrder() StreamOption { return core.WithCompletionOrder() }

// SourceSO returns the exhaustive SO(t) sweep as a lazy source: every
// failure pattern in SO(t) over n agents and the given horizon (excluding
// the behaviorally invisible self-omissions), crossed with every
// assignment of initial preferences — the run space the paper's
// optimality results quantify over. Scenarios stream in the canonical
// enumeration order, so driving the source through Runner.StreamFrom is
// bit-identical to running the eager slice while never materializing it.
// It returns an error when the sweep's bounds are rejected (n, t, or
// horizon out of range).
func SourceSO(n, t, horizon int) (Source, error) {
	pats, err := source.SO(n, t, horizon, adversary.Options{})
	if err != nil {
		return nil, err
	}
	return source.CrossInits(pats, n)
}

// SourceCrash is SourceSO for the crash(t) failure model.
func SourceCrash(n, t, horizon int) (Source, error) {
	pats, err := source.Crash(n, t, horizon)
	if err != nil {
		return nil, err
	}
	return source.CrossInits(pats, n)
}

// SourceRandomSO returns a seeded stream of random scenarios: each is a
// random SO(t) pattern (messages from faulty agents dropped independently
// with probability dropProb) paired with uniformly random initial
// preferences. count < 0 means unbounded — bound consumption with
// SourceLimit or by cancelling the Runner's context. Two sources with the
// same seed yield identical scenarios, so a sweep can be replayed against
// several stacks without materializing it.
func SourceRandomSO(seed int64, n, t, horizon int, dropProb float64, count int64) Source {
	rng := rand.New(rand.NewSource(seed))
	return source.RandomScenarios(rng, n, t, horizon, dropProb, count)
}

// SourceFromScenarios adapts an eager scenario slice to the Source
// interface, bridging batch call sites onto the streaming entry points.
func SourceFromScenarios(scenarios []Scenario) Source {
	return source.FromSlice(scenarios)
}

// SourceLimit truncates a source after max scenarios.
func SourceLimit(src Source, max int64) Source { return source.Limit(src, max) }

// CanonicalizeScenario returns the canonical representative of the
// scenario's orbit under agent permutation (restricted to permutations
// preserving the faulty/correct split) and the orbit's size — the
// multiplicity SourceQuotient annotates representatives with. Scenarios
// in one orbit produce permutation-equivalent runs under every
// agent-symmetric stack, so one representative stands for them all.
func CanonicalizeScenario(pat *Pattern, inits []Value) (*Pattern, []Value, int64) {
	return model.CanonicalizeScenario(pat, inits)
}

// SourceQuotient filters a source down to the canonical representative
// of each agent-permutation orbit, annotating every survivor with its
// orbit size as Scenario.Weight — up to an n!-fold reduction of an
// exhaustive sweep over an agent-symmetric stack. Weighted aggregates
// (Runner.RunShard outcome multiplicities, MergeOutcomes' weighted
// totals, the model checker's expanded system) recover exact full-sweep
// counts from the representatives. It composes with the other
// combinators; when sharding, put it inside SourceStride —
// SourceStride(SourceQuotient(src), i, k) — so the K stripes partition
// the representative enumeration. The representative count is discovered
// during enumeration, so the quotiented source reports an unknown Count.
func SourceQuotient(src Source) Source { return source.Quotient(src) }
