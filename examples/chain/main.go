// Chain reproduces the introduction's impossibility argument: under
// omission failures there is no EBA protocol that decides 0 as soon as it
// learns *in any way* that some agent preferred 0.
//
// Three agents, t=1. Agent 0 is faulty with initial preference 0; agents
// 1 and 2 are nonfaulty with preference 1.
//
// Run r:  agent 0 sends nothing, ever. The nonfaulty agents must
//
//	eventually decide 1 (agent 0's preference might have been 1).
//
// Run r′: same, except one late message: in round 2 agent 0 tells agent 2
//
//	(truthfully) that its initial preference was 0.
//
// Agent 1 cannot distinguish r from r′, so it decides 1 in both. An eager
// 0-biased protocol has agent 2 decide 0 in r′ — two nonfaulty agents
// disagree. The paper's P_min protocol only accepts a 0 through a fresh
// chain of 0-decisions and stays correct on exactly the same adversary.
//
//	go run ./examples/chain
package main

import (
	"context"
	"fmt"
	"log"

	eba "repro"
)

const (
	n = 3
	t = 1
)

// runRPrime is the introduction's run r′ for the given stack: agent 0
// silent except for one message to agent 2 in round 2.
func runRPrime(stack eba.Stack) *eba.Result {
	pattern := eba.NewPattern(n, stack.Horizon())
	for m := 0; m < stack.Horizon(); m++ {
		for j := 1; j < n; j++ {
			if m == 1 && j == 2 {
				continue // the single late delivery: round 2, to agent 2
			}
			pattern.Drop(m, 0, eba.AgentID(j))
		}
	}
	res, err := eba.NewRunner(stack).Run(context.Background(),
		eba.Scenario{Pattern: pattern, Inits: []eba.Value{eba.Zero, eba.One, eba.One}})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func report(name string, res *eba.Result) {
	fmt.Printf("%s:\n", name)
	for i := 1; i < n; i++ {
		id := eba.AgentID(i)
		fmt.Printf("  nonfaulty agent %d: decided %v in round %d\n", i, res.Decided(id), res.Round(id))
	}
	agreement := true
	for _, v := range eba.CheckRun(res, eba.SpecOptions{}) {
		if v.Property == "Agreement" {
			agreement = false
		}
	}
	if agreement {
		fmt.Println("  agreement: satisfied")
	} else {
		fmt.Println("  agreement: VIOLATED")
	}
	fmt.Println()
}

func main() {
	fmt.Println("Introduction counterexample: eager 0-bias is impossible under omissions")
	fmt.Println()

	// The naive protocol decides 0 on any evidence of an initial 0 —
	// including agent 0's stale (init,0) report in round 2 of r′.
	naive, err := eba.NewStack("naive", eba.WithN(n), eba.WithT(t))
	if err != nil {
		log.Fatal(err)
	}
	report("naive protocol on run r′", runRPrime(naive))

	// P_min on the same adversary: the late report carries no decide-0
	// announcement, so no 0-chain forms and both nonfaulty agents decide 1.
	min, err := eba.NewStack("min", eba.WithN(n), eba.WithT(t))
	if err != nil {
		log.Fatal(err)
	}
	report("P_min on run r′", runRPrime(min))

	fmt.Println("The naive protocol's agent 2 trusts the stale 0 while agent 1 times out —")
	fmt.Println("exactly the disagreement the paper's 0-chain condition is designed to prevent.")
}
