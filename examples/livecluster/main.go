// Livecluster runs the optimal full-information protocol on the
// concurrent goroutine runtime: one goroutine per agent, a router
// enforcing synchronized rounds and injecting a random omission
// adversary. The same Runner API drives both substrates — only the
// executor option changes — and the example verifies the two traces
// agree: the protocols are oblivious to which substrate they run on.
//
//	go run ./examples/livecluster [seed]
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	eba "repro"
)

func main() {
	const (
		n = 8
		t = 3
	)
	seed := int64(42)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = s
	}

	stack, err := eba.NewStack("fip", eba.WithN(n), eba.WithT(t))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pattern := eba.RandomSO(rng, n, t, stack.Horizon(), 0.4)
	inits := make([]eba.Value, n)
	for i := range inits {
		inits[i] = eba.Value(rng.Intn(2))
	}
	scenario := eba.Scenario{Pattern: pattern, Inits: inits}
	specOpts := eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}

	fmt.Printf("live cluster: %d agent goroutines, %s, seed %d\n", n, eba.SO(t), seed)
	fmt.Printf("adversary: %v\n", pattern)
	fmt.Print("inits:     ")
	for _, v := range inits {
		fmt.Print(v)
	}
	fmt.Println()
	fmt.Println()

	ctx := context.Background()
	conc, err := eba.NewRunner(stack,
		eba.WithExecutor(eba.Concurrent),
		eba.WithSpecCheck(specOpts)).Run(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := eba.AgentID(i)
		role := "nonfaulty"
		if pattern.Faulty(id) {
			role = "faulty   "
		}
		fmt.Printf("agent %d [%s] decided %v in round %d\n", i, role, conc.Decided(id), conc.Round(id))
	}

	// Cross-check against the deterministic sequential engine.
	seq, err := eba.NewRunner(stack, eba.WithExecutor(eba.Sequential)).Run(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := eba.AgentID(i)
		if seq.Decided(id) != conc.Decided(id) || seq.Round(id) != conc.Round(id) {
			log.Fatalf("concurrent and sequential traces diverge for agent %d", i)
		}
	}
	fmt.Println("\nconcurrent trace identical to the sequential engine's — EBA specification satisfied")
}
