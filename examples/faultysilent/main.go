// Faultysilent reproduces Example 7.1 of the paper at its exact
// parameters: n=20 agents, t=10 of them faulty and silent from the first
// round, every initial preference 1.
//
// After one round every nonfaulty agent knows who the faulty agents are;
// after two rounds that knowledge is common knowledge among the nonfaulty
// agents, and the optimal full-information protocol P_opt decides in
// round 3. The limited-information protocols P_min and P_basic cannot
// distinguish this run from one with a hidden 0-chain threading through
// the silent agents, so they must wait until round t+2 = 12 — and so must
// P_min even when it is handed the full-information exchange (the
// registry's fip+pmin pairing): the exchange alone buys nothing without
// the matching decision rule.
//
//	go run ./examples/faultysilent
package main

import (
	"context"
	"fmt"
	"log"

	eba "repro"
)

func main() {
	const (
		n = 20
		t = 10
	)
	pattern := eba.Example71(n, t, t+2)
	inits := eba.UniformInits(n, eba.One)
	scenario := eba.Scenario{Pattern: pattern, Inits: inits}

	fmt.Printf("Example 7.1: n=%d, t=%d, agents 0..%d silent-faulty, all preferences 1\n\n", n, t, t-1)
	fmt.Printf("%-28s %-18s %s\n", "stack", "nonfaulty decide", "bits sent")
	for _, name := range []string{"fip", "fip+pmin", "min", "basic"} {
		stack, err := eba.NewStack(name, eba.WithN(n), eba.WithT(t))
		if err != nil {
			log.Fatal(err)
		}
		runner := eba.NewRunner(stack,
			eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon()}))
		res, err := runner.Run(context.Background(), scenario)
		if err != nil {
			log.Fatalf("%s: %v", stack.Name, err)
		}
		fmt.Printf("%-28s round %-12d %d\n",
			stack.Exchange.Name()+"+"+stack.Action.Name(),
			res.MaxDecisionRound(true),
			res.Stats.BitsSent)
	}

	fmt.Println("\nThe full-information protocol buys 9 rounds with ~5000x the bits —")
	fmt.Println("the trade-off Section 8 of the paper quantifies. fip+pmin pays the")
	fmt.Println("bits without the rounds: optimality needs the pairing, not the exchange.")
}
