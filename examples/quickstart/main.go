// Quickstart: reach eventual Byzantine agreement among five agents, two
// of which may omit messages, using the paper's basic protocol stack
// ⟨Ebasic, P_basic⟩ — constructed by name from the registry and executed
// through a Runner that checks every run against the EBA specification.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	eba "repro"
)

func main() {
	const (
		n = 5 // agents
		t = 2 // failure bound
	)
	stack, err := eba.NewStack("basic", eba.WithN(n), eba.WithT(t))
	if err != nil {
		log.Fatal(err)
	}

	// Agent 0 is faulty: every message it sends is lost. Its initial
	// preference is the only 0 in the system — so the nonfaulty agents,
	// who never hear about it, must agree on 1.
	pattern := eba.Silent(n, stack.Horizon(), 0)
	inits := []eba.Value{eba.Zero, eba.One, eba.One, eba.One, eba.One}

	// The runner verifies each run against the EBA specification of the
	// paper: Unique Decision, Agreement, Validity, Termination by t+2.
	runner := eba.NewRunner(stack,
		eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}))
	res, err := runner.Run(context.Background(), eba.Scenario{Pattern: pattern, Inits: inits})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stack %s, n=%d, t=%d, adversary: agent 0 silent\n\n", stack.Name, n, t)
	for i := 0; i < n; i++ {
		id := eba.AgentID(i)
		fmt.Printf("agent %d (init %v): decided %v in round %d\n",
			i, inits[i], res.Decided(id), res.Round(id))
	}
	fmt.Printf("\nbits sent: %d (the basic exchange costs O(n²t) bits per run)\n", res.Stats.BitsSent)
	fmt.Println("EBA specification: satisfied")
}
