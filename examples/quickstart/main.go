// Quickstart: reach eventual Byzantine agreement among five agents, two
// of which may omit messages, using the paper's basic protocol stack
// ⟨Ebasic, P_basic⟩.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	eba "repro"
)

func main() {
	const (
		n = 5 // agents
		t = 2 // failure bound
	)
	stack := eba.Basic(n, t)

	// Agent 0 is faulty: every message it sends is lost. Its initial
	// preference is the only 0 in the system — so the nonfaulty agents,
	// who never hear about it, must agree on 1.
	pattern := eba.Silent(n, stack.Horizon(), 0)
	inits := []eba.Value{eba.Zero, eba.One, eba.One, eba.One, eba.One}

	res, err := stack.Run(pattern, inits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stack %s, n=%d, t=%d, adversary: agent 0 silent\n\n", stack.Name, n, t)
	for i := 0; i < n; i++ {
		id := eba.AgentID(i)
		fmt.Printf("agent %d (init %v): decided %v in round %d\n",
			i, inits[i], res.Decided(id), res.Round(id))
	}
	fmt.Printf("\nbits sent: %d (the basic exchange costs O(n²t) bits per run)\n", res.Stats.BitsSent)

	// Every run can be checked against the EBA specification of the
	// paper: Unique Decision, Agreement, Validity, Termination by t+2.
	if vs := eba.CheckRun(res, eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}); len(vs) > 0 {
		log.Fatalf("specification violated: %v", vs)
	}
	fmt.Println("EBA specification: satisfied")
}
