package eba

import (
	"context"

	"repro/internal/core"
	"repro/internal/episteme"
	"repro/internal/registry"
)

// StackOption configures NewStack and Compose: WithN, WithT, WithHorizon.
type StackOption = core.Option

// StackInfo describes a registered named pairing, for discovery and CLI
// help.
type StackInfo = registry.StackInfo

// WithN sets the number of agents (default 5).
func WithN(n int) StackOption { return core.WithN(n) }

// WithT sets the failure bound t (default 2).
func WithT(t int) StackOption { return core.WithT(t) }

// WithHorizon overrides the execution horizon (default t+2, the bound of
// Proposition 6.1 by which every EBA stack has decided).
func WithHorizon(h int) StackOption { return core.WithHorizon(h) }

// NewStack constructs a registered protocol stack by name. The registered
// names are the paper's pairings:
//
//	min      = ⟨Emin,  Pmin⟩      — optimal wrt the minimal exchange
//	basic    = ⟨Ebasic, Pbasic⟩    — optimal wrt the basic exchange
//	fip      = ⟨Efip,  Popt⟩      — optimal wrt full information
//	fip+pmin = ⟨Efip,  Pmin⟩      — correct-but-dominated baseline
//	fip-nock = ⟨Efip,  Popt-nock⟩ — the common-knowledge ablation
//	naive    = ⟨Ereport, Pnaive⟩   — the introduction's counterexample
//
// Example:
//
//	stack, err := eba.NewStack("fip", eba.WithN(6), eba.WithT(2))
func NewStack(name string, opts ...StackOption) (Stack, error) {
	return core.NewStack(name, opts...)
}

// Compose constructs the stack pairing any registered information
// exchange ("min", "basic", "fip", "report") with any registered action
// protocol ("pmin", "pbasic", "popt", "popt-nock", "pnaive"), validating
// that the action protocol can read the exchange's local states. This is
// the paper's central move made operational: a protocol is the pair
// ⟨information exchange E, action protocol P⟩, and any well-typed pairing
// is runnable:
//
//	stack, err := eba.Compose("fip", "pmin", eba.WithN(8), eba.WithT(3))
func Compose(exchangeName, actionName string, opts ...StackOption) (Stack, error) {
	return core.Compose(exchangeName, actionName, opts...)
}

// MustStack is NewStack for call sites where the name and configuration
// are compile-time constants and an error is a bug.
func MustStack(name string, opts ...StackOption) Stack { return core.MustStack(name, opts...) }

// StackNames lists the registered stack names, sorted.
func StackNames() []string { return registry.StackNames() }

// ExchangeNames lists the registered information-exchange names, sorted.
func ExchangeNames() []string { return registry.ExchangeNames() }

// ActionNames lists the registered action-protocol names, sorted.
func ActionNames() []string { return registry.ActionNames() }

// Stacks lists the registered stacks with their one-line descriptions.
func Stacks() []StackInfo { return registry.Stacks() }

// Synthesized is a concrete action protocol derived from a knowledge-based
// program by epistemic fixpoint construction.
type Synthesized = episteme.Synthesized

// Synthesize derives a concrete action protocol from the knowledge-based
// program by exhaustive epistemic fixpoint construction over the stack's
// EBA context (the "epistemic synthesis" direction of the paper's
// discussion). Exponential: small n and t only. ctx cancels the
// construction; WithCheckParallelism tunes the worker pool it shards
// over.
func Synthesize(ctx context.Context, stack Stack, prog Program, opts ...CheckOption) (*Synthesized, *System, error) {
	return episteme.Synthesize(ctx, episteme.ContextFor(stack), prog, opts...)
}
