package eba_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	eba "repro"
	"repro/internal/adversary"
	"repro/internal/model"
)

// meteredSource wraps a Source and tracks how far the Runner's dispatcher
// has pulled ahead of the outcomes the consumer has seen — the streaming
// path's memory footprint in scenarios.
type meteredSource struct {
	mu         sync.Mutex
	inner      eba.Source
	pulled     int
	emitted    int
	maxAhead   int
	totalCount int
}

func (m *meteredSource) Next() (eba.Scenario, bool) {
	sc, ok := m.inner.Next()
	if ok {
		m.mu.Lock()
		m.pulled++
		if ahead := m.pulled - m.emitted; ahead > m.maxAhead {
			m.maxAhead = ahead
		}
		m.totalCount++
		m.mu.Unlock()
	}
	return sc, ok
}

func (m *meteredSource) Count() (int64, bool) { return m.inner.Count() }

func (m *meteredSource) sawEmitted() {
	m.mu.Lock()
	m.emitted++
	m.mu.Unlock()
}

// TestSourceSOSweepMatchesEagerSlice is the acceptance check of the
// streaming subsystem: an exhaustive n=3, t=1, horizon=2 SO sweep driven
// by eba.SourceSO through Runner.StreamFrom produces bit-identical
// results to the eager-slice RunBatch path, while the dispatcher never
// runs more than the reordering window ahead of the consumer — the full
// scenario list (49 patterns × 8 init vectors = 392 scenarios) is never
// materialized.
func TestSourceSOSweepMatchesEagerSlice(t *testing.T) {
	const n, tf, horizon, window = 3, 1, 2, 4
	stack, err := eba.NewStack("fip", eba.WithN(n), eba.WithT(tf), eba.WithHorizon(horizon))
	if err != nil {
		t.Fatal(err)
	}
	runner := eba.NewRunner(stack, eba.WithParallelism(4), eba.WithBufferReuse())

	// Eager path: materialize the whole sweep, run it as a batch.
	var scenarios []eba.Scenario
	pats, err := adversary.NewSOPatterns(n, tf, horizon, adversary.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pat, ok := pats.Next(); ok; pat, ok = pats.Next() {
		p := pat.Clone()
		ivs, err := adversary.NewInitVectors(n)
		if err != nil {
			t.Fatal(err)
		}
		for inits, ok2 := ivs.Next(); ok2; inits, ok2 = ivs.Next() {
			scenarios = append(scenarios, eba.Scenario{Pattern: p, Inits: append([]model.Value(nil), inits...)})
		}
	}
	want, err := runner.RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming path: the same sweep pulled lazily through a bounded
	// window.
	src, err := eba.SourceSO(n, tf, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := src.Count(); !ok || c != int64(len(scenarios)) {
		t.Fatalf("SourceSO count = %d/%v, eager slice has %d scenarios", c, ok, len(scenarios))
	}
	metered := &meteredSource{inner: src}
	k := 0
	for oc := range runner.StreamFrom(context.Background(), metered, eba.WithWindow(window)) {
		metered.sawEmitted()
		if oc.Err != nil {
			t.Fatalf("scenario %d: %v", oc.Index, oc.Err)
		}
		if oc.Index != k {
			t.Fatalf("stream emitted index %d, want %d", oc.Index, k)
		}
		if k >= len(want) {
			t.Fatalf("stream emitted more than the %d eager scenarios", len(want))
		}
		// Bit-identity: traffic stats, full trace, and decision ledger.
		if want[k].Stats != oc.Result.Stats {
			t.Fatalf("scenario %d: stats differ between eager and streamed runs", k)
		}
		for m := range want[k].States {
			for i := range want[k].States[m] {
				if want[k].States[m][i].Key() != oc.Result.States[m][i].Key() {
					t.Fatalf("scenario %d: state differs at time %d agent %d", k, m, i)
				}
			}
		}
		for i := range want[k].Decision {
			if want[k].Decision[i] != oc.Result.Decision[i] ||
				want[k].DecisionRound[i] != oc.Result.DecisionRound[i] {
				t.Fatalf("scenario %d: decision ledger differs for agent %d", k, i)
			}
		}
		k++
	}
	if k != len(want) {
		t.Fatalf("stream emitted %d outcomes, want %d", k, len(want))
	}
	if metered.totalCount != len(scenarios) {
		t.Fatalf("source produced %d scenarios, eager slice %d", metered.totalCount, len(scenarios))
	}
	// The memory bound: the dispatcher may pull at most `window` scenarios
	// beyond what the consumer has seen (the in-flight set), far below the
	// full sweep. The +1 covers the instant between the consumer receiving
	// an outcome and this test recording it.
	if metered.maxAhead > window+1 {
		t.Fatalf("dispatcher ran %d scenarios ahead of the consumer, window is %d", metered.maxAhead, window)
	}
}

// TestSourceRandomSOReplays checks seeded random sources replay
// identically, the property that lets several stacks sweep corresponding
// scenarios without a materialized slice.
func TestSourceRandomSOReplays(t *testing.T) {
	a := eba.SourceRandomSO(42, 5, 2, 4, 0.5, 30)
	b := eba.SourceRandomSO(42, 5, 2, 4, 0.5, 30)
	for k := 0; ; k++ {
		sa, oka := a.Next()
		sb, okb := b.Next()
		if oka != okb {
			t.Fatalf("sources disagree on length at scenario %d", k)
		}
		if !oka {
			if k != 30 {
				t.Fatalf("sources ended after %d scenarios, want 30", k)
			}
			return
		}
		if sa.Pattern.Key() != sb.Pattern.Key() {
			t.Fatalf("scenario %d: patterns differ across replays", k)
		}
		for i := range sa.Inits {
			if sa.Inits[i] != sb.Inits[i] {
				t.Fatalf("scenario %d: inits differ across replays", k)
			}
		}
	}
}

// TestSourceLimitThroughRunner drives limited sources — over both an
// unbounded generator and a bounded exhaustive sweep — through RunSource
// end-to-end (the latter exercises the post-drain count check against
// Limit's immutable total).
func TestSourceLimitThroughRunner(t *testing.T) {
	stack, err := eba.NewStack("basic", eba.WithN(4), eba.WithT(1))
	if err != nil {
		t.Fatal(err)
	}
	runner := eba.NewRunner(stack, eba.WithParallelism(2), eba.WithBufferReuse())
	src := eba.SourceLimit(eba.SourceRandomSO(7, 4, 1, stack.Horizon(), 0.4, -1), 25)
	results, err := runner.RunSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 25 {
		t.Fatalf("RunSource returned %d results, want 25", len(results))
	}

	exhaustive, err := eba.SourceSO(4, 1, stack.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	results, err = runner.RunSource(context.Background(), eba.SourceLimit(exhaustive, 25))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 25 {
		t.Fatalf("RunSource over limited bounded source returned %d results, want 25", len(results))
	}
}

// TestPublicShardAndMerge drives the whole shard-and-merge surface
// through the public API: stride the exhaustive sweep into 3 stripes,
// RunShard each, MergeOutcomes them, and pin the merged stream and
// digest against the single-process (0/1) run — then do the same for
// the model checker through BuildShardIndex + MergeSystems.
func TestPublicShardAndMerge(t *testing.T) {
	ctx := context.Background()
	stack, err := eba.NewStack("fip", eba.WithN(3), eba.WithT(1))
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() eba.Source {
		src, err := eba.SourceSO(3, 1, stack.Horizon())
		if err != nil {
			t.Fatal(err)
		}
		return src
	}

	// SourceStride partitions the sweep.
	if _, err := eba.SourceStride(sweep(), 3, 3); err == nil {
		t.Fatal("SourceStride accepted an out-of-range index")
	}
	stripe, err := eba.SourceStride(sweep(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := sweep().Count()
	if c, ok := stripe.Count(); !ok || c != (whole-2+2)/3 {
		t.Fatalf("stripe 2/3 counts %d of %d", c, whole)
	}

	runner := eba.NewRunner(stack, eba.WithParallelism(4), eba.WithBufferReuse())
	var single bytes.Buffer
	singleSum, err := runner.RunShard(ctx, sweep(), 0, 1, &single)
	if err != nil {
		t.Fatalf("RunShard 0/1: %v", err)
	}
	streams := make([]io.Reader, 3)
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if _, err := runner.RunShard(ctx, sweep(), i, 3, &buf); err != nil {
			t.Fatalf("RunShard %d/3: %v", i, err)
		}
		streams[i] = bytes.NewReader(buf.Bytes())
	}
	var merged bytes.Buffer
	mergeSum, err := eba.MergeOutcomes(&merged, streams...)
	if err != nil {
		t.Fatalf("MergeOutcomes: %v", err)
	}
	if mergeSum.Digest != singleSum.Digest {
		t.Fatalf("merged digest %s, single-process digest %s", mergeSum.Digest, singleSum.Digest)
	}
	if !bytes.Equal(merged.Bytes(), single.Bytes()) {
		t.Fatal("merged stream is not bit-identical to the single-process stream")
	}

	// Model checker: merged verdicts == single-process verdicts.
	sys, err := eba.BuildSystem(ctx, stack)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.CheckImplements(ctx, eba.ProgramP1, 10)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*eba.ShardIndex, 3)
	for i := range shards {
		idx, err := eba.BuildShardIndex(ctx, stack, i, 3)
		if err != nil {
			t.Fatalf("BuildShardIndex %d/3: %v", i, err)
		}
		var buf bytes.Buffer
		if err := eba.WriteShardIndex(&buf, idx); err != nil {
			t.Fatal(err)
		}
		if shards[i], err = eba.ReadShardIndex(&buf); err != nil {
			t.Fatal(err)
		}
	}
	mergedSys, err := eba.MergeSystems(ctx, shards)
	if err != nil {
		t.Fatalf("MergeSystems: %v", err)
	}
	got, err := mergedSys.CheckImplements(ctx, eba.ProgramP1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged verdicts %v, single-process %v", got, want)
	}
}

// TestPublicShardSpec pins the flag/env round-trip surface.
func TestPublicShardSpec(t *testing.T) {
	sp, err := eba.ParseShardSpec("2/5")
	if err != nil || sp.Index != 2 || sp.Count != 5 || sp.String() != "2/5" {
		t.Fatalf("ParseShardSpec = %+v, %v", sp, err)
	}
	if eba.ShardEnvVar != "EBA_SHARD" {
		t.Fatalf("ShardEnvVar = %q", eba.ShardEnvVar)
	}
	if _, err := eba.ParseShardSpec("5/5"); err == nil {
		t.Fatal("out-of-range spec accepted")
	}
}
