package eba

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/fabric"
)

// The cross-machine sweep fabric: distribute the deterministic stripes
// of shard.go over HTTP. A Coordinator (cmd/ebacoord) holds one JobSpec
// and a lease table over its stripes; Workers (ebashard -worker) pull
// leases, run stripes through the same RunShard/BuildShardIndex paths a
// single process uses, and upload sealed results. Every upload is
// verified on receipt; a worker that stops heartbeating loses its lease
// and the stripe is stolen; the coordinator's final merge is the
// canonical MergeOutcomes/MergeSystems fan-in, so the fabric's merged
// output is bit-identical to a single-process run's.

// Fabric error classes for exit-code mapping with errors.Is: retrying a
// FabricVerification failure reproduces it, retrying a FabricTransport
// failure might not.
var (
	// ErrFabricVerification marks integrity failures: torn or tampered
	// stripes, conflicting duplicate uploads, failed protocol verdicts.
	ErrFabricVerification = fabric.ErrVerification
	// ErrFabricTransport marks exhausted-retry network failures.
	ErrFabricTransport = fabric.ErrTransport
	// ErrFabricConflict marks two sealed valid uploads of one stripe with
	// different digests (a verification failure; the job aborts).
	ErrFabricConflict = fabric.ErrConflict
)

// JobKind selects what a fabric job distributes: sweep outcome streams
// (JobSweep) or model-checker shard indexes (JobCheck).
type JobKind = fabric.JobKind

const (
	JobSweep = fabric.SweepJob
	JobCheck = fabric.CheckJob
)

// JobSpec is the one job a fabric coordinator distributes.
type JobSpec = fabric.JobSpec

// Coordinator serves a fabric job: lease out stripes, verify uploads,
// reassign silent workers' stripes, and run the canonical merge.
type (
	Coordinator       = fabric.Coordinator
	CoordinatorConfig = fabric.CoordinatorConfig
)

// NewCoordinator validates the job, prepares the spool directory, and
// recovers any verified stripes a previous coordinator spooled.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return fabric.NewCoordinator(cfg) }

// FabricWorker pulls and runs stripes for one coordinator with bounded
// retry, heartbeats, and graceful draining.
type (
	FabricWorker  = fabric.Worker
	WorkerConfig  = fabric.WorkerConfig
	WorkerSummary = fabric.WorkerSummary
)

// NewFabricWorker validates the configuration and returns a worker.
func NewFabricWorker(cfg WorkerConfig) (*FabricWorker, error) { return fabric.NewWorker(cfg) }

// Fabric status reporting, as served by the coordinator's /status.
type (
	FabricStatus   = fabric.StatusReport
	FabricCounters = fabric.Counters
	StripeCounts   = fabric.StripeCounts
	WorkerReport   = fabric.WorkerReport
)

// Coordinator phases, as reported by FabricStatus.Phase.
const (
	FabricRunning  = fabric.PhaseRunning
	FabricMerging  = fabric.PhaseMerging
	FabricComplete = fabric.PhaseComplete
	FabricFailed   = fabric.PhaseFailed
)

// VerdictOptions tunes WriteVerdicts.
type VerdictOptions = fabric.VerdictOptions

// WriteVerdicts writes the deterministic verdict block for a merged (or
// directly built) System — the one verdict writer shared by ebashard
// -check -merge and the fabric coordinator, so their outputs compare
// byte for byte. Failed verdicts return an error wrapping
// ErrFabricVerification after the full block is written.
func WriteVerdicts(ctx context.Context, w io.Writer, sys *System, stackName string, opts VerdictOptions) error {
	return fabric.WriteVerdicts(ctx, w, sys, stackName, opts)
}

// VerifyOutcomeStream reads a shard outcome stream end to end, verifying
// record digests and the sealing footer, and returns its summary — the
// check a fabric coordinator applies to every sweep upload.
func VerifyOutcomeStream(r io.Reader) (*ShardSummary, error) {
	return core.VerifyOutcomeStream(r)
}
