package eba_test

// One benchmark per experiment table/figure (E1–E14, mirroring DESIGN.md's
// index), plus micro-benchmarks for the load-bearing substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches measure the cost of regenerating each table; the
// micro benches measure the engine, the concurrent runtime, the batch
// Runner (sequential vs parallel, with and without buffer reuse), and the
// communication-graph machinery behind the polynomial-time P_opt.

import (
	"context"
	"math/rand"
	"testing"

	eba "repro"
	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/episteme"
	"repro/internal/exchange"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/model"
)

// buildSystem builds a stack's interpreted system through the model
// checker's public construction path.
func buildSystem(b *testing.B, name string, n, t int) *episteme.System {
	b.Helper()
	st := stack(b, name, n, t)
	sys, err := episteme.BuildSystem(context.Background(), episteme.ContextFor(st), st.Action)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// stack builds a registered stack, failing the benchmark on a bad name.
func stack(b *testing.B, name string, n, t int) eba.Stack {
	b.Helper()
	st, err := eba.NewStack(name, eba.WithN(n), eba.WithT(t))
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// --- experiment benches (one per table/figure) ---------------------------

func BenchmarkE1MessageComplexity(b *testing.B) {
	// Per-stack single-run cost at the largest E1 configuration; the bits
	// themselves are asserted in the experiments package.
	n, tf := 16, 4
	pat := adversary.Example71(n, tf, tf+2)
	inits := adversary.UniformInits(n, model.One)
	for _, name := range []string{"min", "basic", "fip"} {
		st := stack(b, name, n, tf)
		b.Run(st.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := st.Run(pat, inits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE2FailureFreeZero(b *testing.B) {
	n, tf := 5, 2
	inits := adversary.UniformInits(n, eba.One)
	inits[2] = eba.Zero
	pat := adversary.FailureFree(n, tf+2)
	st := stack(b, "fip", n, tf)
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(pat, inits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3FailureFreeOnes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E3FailureFreeOnes(); !tb.Pass {
			b.Fatal("E3 failed")
		}
	}
}

func BenchmarkE4Example71(b *testing.B) {
	// The paper's exact Example 7.1 run: n=20, t=10 under P_opt.
	n, tf := 20, 10
	pat := adversary.Example71(n, tf, tf+2)
	inits := adversary.UniformInits(n, model.One)
	st := stack(b, "fip", n, tf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Run(pat, inits)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxDecisionRound(true) != 3 {
			b.Fatal("Example 7.1 shape lost")
		}
	}
}

func BenchmarkE5TerminationBound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, tf := 6, 2
	st := stack(b, "basic", n, tf)
	for i := 0; i < b.N; i++ {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.45)
		inits := make([]model.Value, n)
		for j := range inits {
			inits[j] = model.Value(rng.Intn(2))
		}
		if _, err := st.Run(pat, inits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6ImplementsMin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := buildSystem(b, "min", 3, 1)
		if ms, err := sys.CheckImplements(context.Background(), episteme.P0, 1); err != nil || len(ms) != 0 {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkE7ImplementsBasic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := buildSystem(b, "basic", 3, 1)
		if ms, err := sys.CheckImplements(context.Background(), episteme.P0, 1); err != nil || len(ms) != 0 {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkE8ImplementsFIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := buildSystem(b, "fip", 3, 1)
		if ms, err := sys.CheckImplements(context.Background(), episteme.P1, 1); err != nil || len(ms) != 0 {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkE9OptimalityCharacterization(b *testing.B) {
	sys := buildSystem(b, "fip", 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs, err := sys.CheckOptimalityFIP(context.Background(), -1, 1); err != nil || len(vs) != 0 {
			b.Fatal("violation")
		}
	}
}

func BenchmarkE10Safety(b *testing.B) {
	sys := buildSystem(b, "min", 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs, err := sys.CheckSafety(context.Background(), 1); err != nil || len(vs) != 0 {
			b.Fatal("violation")
		}
	}
}

func BenchmarkE11BasicVsMin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.E11BasicVsMin(); !tb.Pass {
			b.Fatal("E11 failed")
		}
	}
}

func BenchmarkE12BasicVsFipFaulty(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, tf := 5, 2
	basic, fip := stack(b, "basic", n, tf), stack(b, "fip", n, tf)
	for i := 0; i < b.N; i++ {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.5)
		inits := make([]model.Value, n)
		for j := range inits {
			inits[j] = model.Value(rng.Intn(2))
		}
		rb, err := basic.Run(pat, inits)
		if err != nil {
			b.Fatal(err)
		}
		rf, err := fip.Run(pat, inits)
		if err != nil {
			b.Fatal(err)
		}
		if rf.MaxDecisionRound(true) > rb.MaxDecisionRound(true) {
			b.Fatal("fip decided later than basic")
		}
	}
}

func BenchmarkE13CrashVsOmission(b *testing.B) {
	// One exhaustive naive-protocol sweep over SO(1), n=3.
	st := stack(b, "naive", 3, 1)
	for i := 0; i < b.N; i++ {
		pats, err := adversary.NewSOPatterns(3, 1, 3, adversary.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for pat, ok := pats.Next(); ok; pat, ok = pats.Next() {
			p := pat.Clone()
			ivs, err := adversary.NewInitVectors(3)
			if err != nil {
				b.Fatal(err)
			}
			for inits, ok2 := ivs.Next(); ok2; inits, ok2 = ivs.Next() {
				if _, err := st.Run(p, append([]model.Value(nil), inits...)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkE14Synthesize(b *testing.B) {
	c := episteme.Context{Exchange: exchange.NewMin(3), T: 1}
	for i := 0; i < b.N; i++ {
		if _, _, err := episteme.Synthesize(context.Background(), c, episteme.P0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro benches --------------------------------------------------------

func BenchmarkEngineRoundMin(b *testing.B) {
	n, tf := 16, 4
	st := stack(b, "min", n, tf)
	pat := adversary.FailureFree(n, tf+2)
	inits := adversary.UniformInits(n, model.One)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(pat, inits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeConcurrent(b *testing.B) {
	n, tf := 8, 2
	st := stack(b, "basic", n, tf)
	pat := adversary.Silent(n, tf+2, 0)
	inits := adversary.UniformInits(n, model.One)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunConcurrent(pat, inits); err != nil {
			b.Fatal(err)
		}
	}
}

// batchScenarios builds a deterministic scenario list for the Runner
// benches.
func batchScenarios(n, tf, count int) []eba.Scenario {
	rng := rand.New(rand.NewSource(7))
	scenarios := make([]eba.Scenario, count)
	for k := range scenarios {
		pat := adversary.RandomSO(rng, n, tf, tf+2, 0.4)
		inits := make([]model.Value, n)
		for i := range inits {
			inits[i] = model.Value(rng.Intn(2))
		}
		scenarios[k] = eba.Scenario{Pattern: pat, Inits: inits}
	}
	return scenarios
}

// BenchmarkRunnerBatch measures the batch hot path across executor,
// parallelism, and buffer-reuse configurations on the same 64-scenario
// workload.
func BenchmarkRunnerBatch(b *testing.B) {
	n, tf := 8, 2
	st := stack(b, "basic", n, tf)
	scenarios := batchScenarios(n, tf, 64)
	ctx := context.Background()
	cases := []struct {
		name string
		opts []eba.RunnerOption
	}{
		{"sequential", nil},
		{"sequential-reuse", []eba.RunnerOption{eba.WithBufferReuse()}},
		{"parallel4-reuse", []eba.RunnerOption{eba.WithParallelism(4), eba.WithBufferReuse()}},
		{"concurrent-parallel4", []eba.RunnerOption{eba.WithExecutor(eba.Concurrent), eba.WithParallelism(4)}},
	}
	for _, c := range cases {
		runner := eba.NewRunner(st, c.opts...)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runner.RunBatch(ctx, scenarios); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineBufferReuse isolates the allocation savings of the
// reusable scratch buffers — plain and arena-backed — on single runs of
// the min and fip stacks. CI runs it with -benchtime=1x as a smoke test
// so allocation regressions on the hot path fail loudly; the calibrated
// numbers live in BENCH_engine.json (ebabench -bench-engine).
func BenchmarkEngineBufferReuse(b *testing.B) {
	cases := []struct {
		stackName string
		n, tf     int
	}{
		{"min", 16, 4},
		{"fip", 8, 2},
	}
	for _, c := range cases {
		st := stack(b, c.stackName, c.n, c.tf)
		pat := adversary.Example71(c.n, c.tf, c.tf+2)
		inits := adversary.UniformInits(c.n, model.One)
		cfg := st.Config(pat, inits)
		b.Run(c.stackName+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.stackName+"/reused", func(b *testing.B) {
			b.ReportAllocs()
			buf := engine.NewBuffers()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunBuffered(cfg, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.stackName+"/arena", func(b *testing.B) {
			b.ReportAllocs()
			buf := engine.NewArenaBuffers()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunBuffered(cfg, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGraphMergeAndKey(b *testing.B) {
	// Build a realistic mid-run graph and measure clone+merge+key, the
	// inner loop of the full-information exchange.
	n, tf := 12, 3
	res, err := stack(b, "fip", n, tf).Run(adversary.Example71(n, tf, tf+2), adversary.UniformInits(n, model.One))
	if err != nil {
		b.Fatal(err)
	}
	st := res.States[tf+1][tf].(*exchange.FIPState)
	g := st.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := g.Clone()
		h.Merge(g)
		_ = h.Key()
	}
}

func BenchmarkRefOwnerAction(b *testing.B) {
	// P_opt's per-round decision cost on a mid-run view at Example 7.1
	// scale.
	n, tf := 20, 10
	res, err := stack(b, "fip", n, tf).Run(adversary.Example71(n, tf, tf+2), adversary.UniformInits(n, model.One))
	if err != nil {
		b.Fatal(err)
	}
	st := res.States[2][tf].(*exchange.FIPState)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := graph.NewRef(tf, st.Graph())
		_ = r.OwnerAction()
	}
}

func BenchmarkBuildSystemMin31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := stack(b, "min", 3, 1)
		if _, err := episteme.BuildSystem(context.Background(), episteme.ContextFor(st), st.Action); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSystem is the model checker's reference build workload
// (γ_fip at n=3, t=1): streaming enumeration through the Runner, the
// memoizing executor, and the interned index. BENCH_episteme.json tracks
// the same quantity across PRs.
func BenchmarkBuildSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eba.BuildSystem(context.Background(), stack(b, "fip", 3, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckImplements is the model checker's reference check
// workload: a cold CheckImplements(P1) — including the concurrent C_N
// condensation builds — on a fresh γ_fip n=3, t=1 system each iteration.
func BenchmarkCheckImplements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := eba.BuildSystem(context.Background(), stack(b, "fip", 3, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ms, err := sys.CheckImplements(context.Background(), eba.ProgramP1, 0)
		if err != nil || len(ms) != 0 {
			b.Fatalf("mismatches=%d err=%v", len(ms), err)
		}
	}
}

func BenchmarkEngineStepFIP(b *testing.B) {
	n, tf := 12, 3
	ex := exchange.NewFIP(n)
	pat := adversary.FailureFree(n, tf+2)
	states := make([]model.State, n)
	acts := make([]model.Action, n)
	for i := 0; i < n; i++ {
		states[i] = ex.Initial(model.AgentID(i), model.One)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Step(ex, pat, 0, states, acts); err != nil {
			b.Fatal(err)
		}
	}
}
