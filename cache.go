package eba

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/episteme"
)

// The persistent result cache: sweeps and model checks keyed by
// (version digest, scenario digest) so a re-run of an already-swept
// scenario restores its outcome instead of re-executing it. The cache
// is content-addressed and verify-on-read — a corrupt, truncated, or
// misfiled entry is a miss, never a wrong answer — and the cached paths
// are bit-identical to the uncached ones at any hit/miss mix: RunShard
// streams and checker verdicts over a warm cache cmp-equal a cold run's.
//
// Wire a cache into a sweep with WithResultCache, into the checker with
// WithCheckCache, or into a fabric worker via WorkerConfig.Cache. The
// fingerprint argument folds the build's identity into every key (use
// CacheFingerprint for the running binary's VCS revision), so entries
// written by one version of the code are invisible to another.

// ResultCache stores cached run payloads; OpenCache, NewCacheClient,
// and NewTieredCache all satisfy it.
type ResultCache = core.ResultCache

// Cache is the on-disk store: append-only digested segments under one
// directory, safe for concurrent use within a process and for
// concurrent readers across processes.
type Cache = cache.Cache

// CacheStats snapshots a store's traffic counters.
type CacheStats = cache.Stats

// CacheGCResult reports what a GC pass kept and dropped.
type CacheGCResult = cache.GCResult

// CacheStore is the storage interface the shared cache server exposes
// over HTTP; Cache, CacheClient, and TieredCache all satisfy it.
type CacheStore = cache.Store

// CacheClient is an HTTP client of a shared cache server (ebacoord
// -cache, or any mount of NewCacheServer). Transport and server
// failures degrade to misses.
type CacheClient = cache.Client

// TieredCache layers a local store over a remote one: local hits win,
// remote hits back-fill the local store, puts write through to both.
type TieredCache = cache.Tiered

// OpenCache opens (or creates) the result cache rooted at dir,
// verifying or quarantining anything damaged it finds there.
func OpenCache(dir string) (*Cache, error) { return cache.Open(dir) }

// NewCacheClient returns a client of the shared cache server at
// baseURL (for ebacoord -cache, that is coordinatorURL + "/cache").
func NewCacheClient(baseURL string) *CacheClient { return cache.NewClient(baseURL) }

// NewTieredCache layers local over remote.
func NewTieredCache(local, remote CacheStore) *TieredCache { return cache.NewTiered(local, remote) }

// NewCacheServer exposes a store over HTTP for NewCacheClient to
// consume. Mount it on any mux; both directions are digest-verified.
func NewCacheServer(store CacheStore) *cache.Server { return cache.NewServer(store) }

// CacheFingerprint identifies the running binary for cache keying: the
// VCS revision when built from a repository ("+dirty" when modified),
// else the module version, else "unversioned".
func CacheFingerprint() string { return cache.Fingerprint() }

// WithCheckCache makes BuildSystem/BuildShardIndex answer scenarios
// from the cache and execute only the misses, bit-identically.
func WithCheckCache(c ResultCache, fingerprint string) CheckOption {
	return episteme.WithCache(c, fingerprint)
}
