package eba_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repository's docs use
// inline links only.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks is the docs link check CI runs as part of lint: every
// relative link in README.md and docs/*.md must point at a file that
// exists, so the documentation cannot silently rot as files move. URLs
// and pure-anchor links are skipped (anchor freshness is not checked —
// only file existence).
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found — the documentation moved without updating this check")
	}
	files = append(files, docs...)

	var broken []string
	links := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			links++
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s: link target %q does not exist", file, target))
			}
		}
	}
	if links == 0 {
		t.Fatal("no relative links found at all — the link extraction regressed")
	}
	for _, b := range broken {
		t.Error(b)
	}
}
