// Command ebarun executes one EBA configuration and prints the per-round
// trace, the decision ledger, and the traffic statistics. Stack,
// exchange, and action names resolve against the library registry, so
// every pairing the library can build is selectable here — including
// ad-hoc compositions written as "exchange+action".
//
// Usage:
//
//	ebarun -stack fip -n 6 -t 2 -adversary example71 -inits all1
//	ebarun -stack fip+pmin -n 5 -t 2 -adversary silent:0 -inits all1
//	ebarun -stack basic+pmin -n 5 -t 2 -inits 01101   # ad-hoc composition
//	ebarun -stack basic -n 4 -t 1 -executor concurrent
//
// With -sweep N the command streams N seeded random scenarios (drop
// probability from -drop, seed from -seed) through the Runner's
// source-driven path instead of executing one configuration, and prints
// the decision-round distribution; -order completion emits outcomes as
// workers finish them instead of in scenario order:
//
//	ebarun -stack fip -n 6 -t 2 -sweep 10000 -drop 0.4
//	ebarun -stack basic -n 8 -t 3 -sweep 100000 -order completion
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	eba "repro"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebarun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebarun", flag.ContinueOnError)
	var (
		stackName = fs.String("stack", "basic",
			"protocol stack: "+strings.Join(eba.StackNames(), ", ")+", or an ad-hoc \"exchange+action\" pairing")
		n          = fs.Int("n", 5, "number of agents")
		t          = fs.Int("t", 2, "failure bound t")
		advSpec    = fs.String("adversary", "none", "adversary: "+eba.AdversarySpecSyntax)
		seed       = fs.Int64("seed", 1, "seed for -adversary random")
		drop       = fs.Float64("drop", 0.5, "drop probability for -adversary random")
		initsSpec  = fs.String("inits", "all1", "initial preferences: all0, all1, or a 0/1 string")
		execName   = fs.String("executor", "sequential", "execution substrate: sequential or concurrent")
		concurrent = fs.Bool("concurrent", false, "deprecated alias for -executor concurrent")
		format     = fs.String("format", "summary", "output: summary, trace (message-level), or json")
		sweepN     = fs.Int64("sweep", 0, "stream this many seeded random scenarios through the Runner instead of one configured run")
		order      = fs.String("order", "ordered", "sweep emission order: ordered (scenario order) or completion (as workers finish)")
		quotient   = fs.Bool("quotient", false, "run the canonical representative of the configured scenario's agent-permutation orbit instead of the scenario itself")
		cacheDir   = fs.String("cache", "", "-sweep: result cache directory — answer already-executed scenarios from it instead of re-running")
		cacheURL   = fs.String("cache-url", "", "-sweep: shared result cache server URL (see ebacoord -cache); combine with -cache for a local tier over it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	executorSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "executor" {
			executorSet = true
		}
	})

	stack, err := makeStack(*stackName, *n, *t)
	if err != nil {
		return err
	}
	executor, err := makeExecutor(*execName, *concurrent, executorSet)
	if err != nil {
		return err
	}
	if *sweepN > 0 {
		// The sweep generates its own adversaries and inits and prints
		// only the aggregate; reject flags it would otherwise silently
		// drop (the executor is honored).
		var incompatible []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "adversary", "inits", "format", "quotient":
				incompatible = append(incompatible, "-"+f.Name)
			}
		})
		if len(incompatible) > 0 {
			return fmt.Errorf("%s cannot apply to -sweep (the sweep draws random adversaries and inits and prints a summary; symmetry quotients are for exhaustive sweeps — see ebashard -quotient)",
				strings.Join(incompatible, ", "))
		}
		store, closeStore, err := openResultCache(*cacheDir, *cacheURL)
		if err != nil {
			return err
		}
		defer closeStore()
		return runSweep(stack, executor, *sweepN, *seed, *drop, *order, store)
	}
	if *cacheDir != "" || *cacheURL != "" {
		return fmt.Errorf("-cache/-cache-url apply to -sweep only (single runs print full traces, which the cache does not store)")
	}
	pat, err := makeAdversary(*advSpec, *n, *t, stack.Horizon(), *seed, *drop)
	if err != nil {
		return err
	}
	inits, err := makeInits(*initsSpec, *n)
	if err != nil {
		return err
	}
	var orbit int64
	if *quotient {
		// Execute the orbit's canonical representative: under an
		// agent-symmetric stack its run is the configured scenario's with
		// the agents relabeled, and it is the one the quotiented sweeps
		// (ebashard -quotient) would have executed.
		pat, inits, orbit = eba.CanonicalizeScenario(pat, inits)
	}

	runner := eba.NewRunner(stack, eba.WithExecutor(executor))
	res, err := runner.Run(context.Background(), eba.Scenario{Pattern: pat, Inits: inits})
	if err != nil {
		return err
	}

	switch *format {
	case "summary":
		// fall through to the summary below
	case "trace":
		fmt.Print(trace.New(res, stack.Exchange, stack.Action.Name()).Render())
		return nil
	case "json":
		data, err := trace.New(res, stack.Exchange, stack.Action.Name()).JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	fmt.Printf("stack=%s n=%d t=%d horizon=%d executor=%s adversary=%s\n",
		stack.Name, *n, *t, stack.Horizon(), executor.Name(), pat)
	fmt.Printf("inits: %s\n", renderValues(inits))
	if *quotient {
		fmt.Printf("symmetry: canonical representative, orbit size %d\n", orbit)
	}
	fmt.Println()
	for m := 0; m < res.Horizon; m++ {
		var acts []string
		for i := 0; i < res.N; i++ {
			if a := res.Actions[m][i]; a.IsDecide() {
				acts = append(acts, fmt.Sprintf("agent %d %v", i, a))
			}
		}
		if len(acts) == 0 {
			fmt.Printf("round %2d: (no decisions)\n", m+1)
		} else {
			fmt.Printf("round %2d: %s\n", m+1, strings.Join(acts, ", "))
		}
	}
	fmt.Println()
	for i := 0; i < res.N; i++ {
		id := eba.AgentID(i)
		status := "nonfaulty"
		if res.Pattern.Faulty(id) {
			status = "FAULTY"
		}
		if res.Round(id) == 0 {
			fmt.Printf("agent %d (%s): undecided\n", i, status)
		} else {
			fmt.Printf("agent %d (%s): decided %v in round %d\n", i, status, res.Decided(id), res.Round(id))
		}
	}
	fmt.Printf("\ntraffic: %d messages / %d bits sent; %d messages / %d bits delivered\n",
		res.Stats.MessagesSent, res.Stats.BitsSent,
		res.Stats.MessagesDelivered, res.Stats.BitsDelivered)

	if vs := eba.CheckRun(res, eba.SpecOptions{RoundBound: stack.Horizon()}); len(vs) != 0 {
		fmt.Println("\nEBA specification violations:")
		for _, v := range vs {
			fmt.Println(" ", v)
		}
		if stack.Name != "naive" {
			return fmt.Errorf("unexpected specification violation")
		}
		fmt.Println("(expected: the naive stack is the paper's counterexample)")
	} else {
		fmt.Println("\nEBA specification: satisfied")
	}
	return nil
}

// runSweep streams count seeded random scenarios through the Runner's
// source-driven path — never materializing them — and prints the
// distribution of final nonfaulty decision rounds plus any specification
// violations. With -order completion the outcomes are consumed as workers
// finish them (the aggregate is order-independent, so the summary is
// identical either way).
func runSweep(stack eba.Stack, executor eba.Executor, count, seed int64, drop float64, order string, store eba.ResultCache) error {
	var streamOpts []eba.StreamOption
	switch order {
	case "ordered":
	case "completion":
		streamOpts = append(streamOpts, eba.WithCompletionOrder())
	default:
		return fmt.Errorf("unknown sweep order %q (have ordered, completion)", order)
	}
	src := eba.SourceRandomSO(seed, stack.N, stack.T, stack.Horizon(), drop, count)
	runnerOpts := []eba.RunnerOption{
		eba.WithExecutor(executor),
		eba.WithParallelism(0),
		eba.WithBufferReuse(),
		eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon()}),
	}
	if store != nil {
		runnerOpts = append(runnerOpts, eba.WithResultCache(store, eba.CacheFingerprint()))
	}
	runner := eba.NewRunner(stack, runnerOpts...)

	fmt.Printf("sweep: stack=%s n=%d t=%d horizon=%d executor=%s scenarios=%d drop=%.2f seed=%d order=%s\n\n",
		stack.Name, stack.N, stack.T, stack.Horizon(), executor.Name(), count, drop, seed, order)
	hist := make([]int64, stack.Horizon()+1)
	var runs, violations int64
	var firstViolation error
	for oc := range runner.StreamFrom(context.Background(), src, streamOpts...) {
		runs++
		if oc.Err != nil {
			violations++
			if firstViolation == nil {
				firstViolation = oc.Err
			}
			continue
		}
		if r := oc.Result.MaxDecisionRound(true); r >= 0 && r < len(hist) {
			hist[r]++
		}
	}
	for r, c := range hist {
		if r == 0 && c == 0 {
			continue
		}
		fmt.Printf("decided by round %2d: %8d run(s)\n", r, c)
	}
	fmt.Printf("\n%d runs; EBA specification violations: %d\n", runs, violations)
	if statser, ok := store.(interface{ Stats() eba.CacheStats }); ok {
		st := statser.Stats()
		fmt.Printf("cache: %d hits, %d misses\n", st.Hits, st.Misses)
	}
	if violations > 0 {
		if stack.Name != "naive" {
			return fmt.Errorf("unexpected specification violations (first: %v)", firstViolation)
		}
		fmt.Println("(expected: the naive stack is the paper's counterexample)")
	}
	return nil
}

// openResultCache resolves the -cache/-cache-url pair into one store:
// the directory alone, the server alone, or the directory tiered over
// the server. Returns a nil store when neither flag is set.
func openResultCache(dir, url string) (eba.ResultCache, func() error, error) {
	noop := func() error { return nil }
	switch {
	case dir == "" && url == "":
		return nil, noop, nil
	case dir == "":
		return eba.NewCacheClient(url), noop, nil
	}
	local, err := eba.OpenCache(dir)
	if err != nil {
		return nil, nil, err
	}
	if url == "" {
		return local, local.Close, nil
	}
	return eba.NewTieredCache(local, eba.NewCacheClient(url)), local.Close, nil
}

// makeStack resolves a registered stack name, falling back to the
// "exchange+action" composition syntax for ad-hoc pairings.
func makeStack(name string, n, t int) (eba.Stack, error) {
	st, err := eba.NewStack(name, eba.WithN(n), eba.WithT(t))
	if err == nil {
		return st, nil
	}
	if exName, actName, ok := strings.Cut(name, "+"); ok {
		st, composeErr := eba.Compose(exName, actName, eba.WithN(n), eba.WithT(t))
		if composeErr == nil {
			return st, nil
		}
		return eba.Stack{}, composeErr
	}
	return eba.Stack{}, err
}

// makeExecutor resolves the executor name; the deprecated -concurrent
// alias applies only after the name validates, and conflicts with an
// explicit -executor sequential rather than silently overriding it.
func makeExecutor(name string, concurrentFlag, executorSet bool) (eba.Executor, error) {
	var executor eba.Executor
	switch name {
	case "sequential":
		executor = eba.Sequential
	case "concurrent":
		executor = eba.Concurrent
	default:
		return nil, fmt.Errorf("unknown executor %q (have sequential, concurrent)", name)
	}
	if concurrentFlag {
		if executorSet && name == "sequential" {
			return nil, fmt.Errorf("-concurrent conflicts with -executor sequential")
		}
		executor = eba.Concurrent
	}
	return executor, nil
}

// makeAdversary delegates to the library's spec parser, the single place
// adversary spec forms are defined.
func makeAdversary(specStr string, n, t, horizon int, seed int64, drop float64) (*eba.Pattern, error) {
	return eba.ParseAdversary(specStr, n, t, horizon, seed, drop)
}

func makeInits(specStr string, n int) ([]eba.Value, error) {
	switch specStr {
	case "all0":
		return eba.UniformInits(n, eba.Zero), nil
	case "all1":
		return eba.UniformInits(n, eba.One), nil
	}
	if len(specStr) != n {
		return nil, fmt.Errorf("inits %q has %d digits for %d agents", specStr, len(specStr), n)
	}
	out := make([]eba.Value, n)
	for i, ch := range specStr {
		switch ch {
		case '0':
			out[i] = eba.Zero
		case '1':
			out[i] = eba.One
		default:
			return nil, fmt.Errorf("inits %q must be 0/1 digits", specStr)
		}
	}
	return out, nil
}

func renderValues(vs []eba.Value) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
	}
	return b.String()
}
