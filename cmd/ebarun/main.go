// Command ebarun executes one EBA configuration and prints the per-round
// trace, the decision ledger, and the traffic statistics.
//
// Usage:
//
//	ebarun -stack fip -n 6 -t 2 -adversary example71 -inits all1
//	ebarun -stack min -n 5 -t 2 -adversary random -seed 7 -inits 01101
//	ebarun -stack basic -n 4 -t 1 -adversary silent:0,2 -concurrent
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebarun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebarun", flag.ContinueOnError)
	var (
		stackName  = fs.String("stack", "basic", "protocol stack: min, basic, fip, or naive")
		n          = fs.Int("n", 5, "number of agents")
		t          = fs.Int("t", 2, "failure bound t")
		advSpec    = fs.String("adversary", "none", "adversary: none, example71, random, or silent:<ids>")
		seed       = fs.Int64("seed", 1, "seed for -adversary random")
		drop       = fs.Float64("drop", 0.5, "drop probability for -adversary random")
		initsSpec  = fs.String("inits", "all1", "initial preferences: all0, all1, or a 0/1 string")
		concurrent = fs.Bool("concurrent", false, "run on the goroutine runtime instead of the engine")
		format     = fs.String("format", "summary", "output: summary, trace (message-level), or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stack, err := makeStack(*stackName, *n, *t)
	if err != nil {
		return err
	}
	pat, err := makeAdversary(*advSpec, *n, *t, stack.Horizon(), *seed, *drop)
	if err != nil {
		return err
	}
	inits, err := makeInits(*initsSpec, *n)
	if err != nil {
		return err
	}

	var res *engine.Result
	if *concurrent {
		res, err = stack.RunConcurrent(pat, inits)
	} else {
		res, err = stack.Run(pat, inits)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "summary":
		// fall through to the summary below
	case "trace":
		fmt.Print(trace.New(res, stack.Exchange, stack.Action.Name()).Render())
		return nil
	case "json":
		data, err := trace.New(res, stack.Exchange, stack.Action.Name()).JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	fmt.Printf("stack=%s n=%d t=%d horizon=%d adversary=%s\n",
		stack.Name, *n, *t, stack.Horizon(), pat)
	fmt.Printf("inits: %s\n\n", renderValues(inits))
	for m := 0; m < res.Horizon; m++ {
		var acts []string
		for i := 0; i < res.N; i++ {
			if a := res.Actions[m][i]; a.IsDecide() {
				acts = append(acts, fmt.Sprintf("agent %d %v", i, a))
			}
		}
		if len(acts) == 0 {
			fmt.Printf("round %2d: (no decisions)\n", m+1)
		} else {
			fmt.Printf("round %2d: %s\n", m+1, strings.Join(acts, ", "))
		}
	}
	fmt.Println()
	for i := 0; i < res.N; i++ {
		id := model.AgentID(i)
		status := "nonfaulty"
		if res.Pattern.Faulty(id) {
			status = "FAULTY"
		}
		if res.Round(id) == 0 {
			fmt.Printf("agent %d (%s): undecided\n", i, status)
		} else {
			fmt.Printf("agent %d (%s): decided %v in round %d\n", i, status, res.Decided(id), res.Round(id))
		}
	}
	fmt.Printf("\ntraffic: %d messages / %d bits sent; %d messages / %d bits delivered\n",
		res.Stats.MessagesSent, res.Stats.BitsSent,
		res.Stats.MessagesDelivered, res.Stats.BitsDelivered)

	if vs := spec.CheckRun(res, spec.Options{RoundBound: stack.Horizon()}); len(vs) != 0 {
		fmt.Println("\nEBA specification violations:")
		for _, v := range vs {
			fmt.Println(" ", v)
		}
		if stack.Name != "naive" {
			return fmt.Errorf("unexpected specification violation")
		}
		fmt.Println("(expected: the naive stack is the paper's counterexample)")
	} else {
		fmt.Println("\nEBA specification: satisfied")
	}
	return nil
}

func makeStack(name string, n, t int) (core.Stack, error) {
	switch name {
	case "min":
		return core.Min(n, t), nil
	case "basic":
		return core.Basic(n, t), nil
	case "fip":
		return core.FIP(n, t), nil
	case "naive":
		return core.Naive(n, t), nil
	default:
		return core.Stack{}, fmt.Errorf("unknown stack %q", name)
	}
}

func makeAdversary(specStr string, n, t, horizon int, seed int64, drop float64) (*model.Pattern, error) {
	switch {
	case specStr == "none":
		return adversary.FailureFree(n, horizon), nil
	case specStr == "example71":
		return adversary.Example71(n, t, horizon), nil
	case specStr == "random":
		return adversary.RandomSO(rand.New(rand.NewSource(seed)), n, t, horizon, drop), nil
	case strings.HasPrefix(specStr, "silent:"):
		var agents []model.AgentID
		for _, part := range strings.Split(strings.TrimPrefix(specStr, "silent:"), ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= n {
				return nil, fmt.Errorf("bad agent id %q in %q", part, specStr)
			}
			agents = append(agents, model.AgentID(id))
		}
		if len(agents) > t {
			return nil, fmt.Errorf("%d silent agents exceed t=%d", len(agents), t)
		}
		return adversary.Silent(n, horizon, agents...), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", specStr)
	}
}

func makeInits(specStr string, n int) ([]model.Value, error) {
	switch specStr {
	case "all0":
		return adversary.UniformInits(n, model.Zero), nil
	case "all1":
		return adversary.UniformInits(n, model.One), nil
	}
	if len(specStr) != n {
		return nil, fmt.Errorf("inits %q has %d digits for %d agents", specStr, len(specStr), n)
	}
	out := make([]model.Value, n)
	for i, ch := range specStr {
		switch ch {
		case '0':
			out[i] = model.Zero
		case '1':
			out[i] = model.One
		default:
			return nil, fmt.Errorf("inits %q must be 0/1 digits", specStr)
		}
	}
	return out, nil
}

func renderValues(vs []model.Value) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
	}
	return b.String()
}
