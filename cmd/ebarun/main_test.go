package main

import (
	"testing"

	eba "repro"
)

func TestRunEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-stack", "min", "-n", "4", "-t", "1", "-adversary", "none", "-inits", "all1"},
		{"-stack", "basic", "-n", "4", "-t", "1", "-adversary", "silent:0", "-inits", "0111"},
		{"-stack", "fip", "-n", "4", "-t", "2", "-adversary", "example71", "-inits", "all1"},
		{"-stack", "min", "-n", "4", "-t", "1", "-adversary", "random", "-seed", "3", "-inits", "all0"},
		{"-stack", "basic", "-n", "3", "-t", "1", "-concurrent"},
		{"-stack", "basic", "-n", "3", "-t", "1", "-executor", "concurrent"},
		{"-stack", "min", "-n", "3", "-t", "1", "-format", "trace"},
		{"-stack", "min", "-n", "3", "-t", "1", "-format", "json"},
		// The previously unreachable pairings, by registry name.
		{"-stack", "fip+pmin", "-n", "4", "-t", "1", "-adversary", "silent:0", "-inits", "all1"},
		{"-stack", "fip-nock", "-n", "4", "-t", "1", "-adversary", "example71", "-inits", "all1"},
		// Ad-hoc composition syntax.
		{"-stack", "basic+pmin", "-n", "4", "-t", "1", "-inits", "all1"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

// TestSweepEndToEnd exercises the streaming sweep mode in both emission
// orders, including the naive stack's expected violations.
func TestSweepEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-stack", "min", "-n", "4", "-t", "1", "-sweep", "200"},
		{"-stack", "fip", "-n", "4", "-t", "1", "-sweep", "200", "-order", "completion"},
		{"-stack", "naive", "-n", "3", "-t", "1", "-sweep", "200", "-drop", "0.6"},
		// The executor flag applies to sweeps.
		{"-stack", "basic", "-n", "3", "-t", "1", "-sweep", "50", "-executor", "concurrent"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-sweep", "10", "-order", "bogus"}); err == nil {
		t.Error("unknown sweep order accepted")
	}
	// Flags the sweep cannot apply are rejected, not silently dropped.
	for _, args := range [][]string{
		{"-stack", "min", "-n", "3", "-t", "1", "-sweep", "10", "-adversary", "example71"},
		{"-stack", "min", "-n", "3", "-t", "1", "-sweep", "10", "-inits", "all1"},
		{"-stack", "min", "-n", "3", "-t", "1", "-sweep", "10", "-format", "json"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted a flag the sweep ignores", args)
		}
	}
}

func TestEveryRegisteredStackIsSelectable(t *testing.T) {
	// The satellite fix for stack-name drift: the CLI accepts exactly the
	// registry's names, so a stack added to the registry is selectable
	// here with no CLI change.
	for _, name := range eba.StackNames() {
		args := []string{"-stack", name, "-n", "4", "-t", "1", "-adversary", "silent:0", "-inits", "all1"}
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-stack", "bogus"},
		{"-stack", "fip+pnaive"},                     // incompatible composition
		{"-stack", "bogus+pmin"},                     // unknown exchange in composition
		{"-executor", "bogus", "-n", "3", "-t", "1"}, // unknown executor
		{"-adversary", "bogus"},
		{"-adversary", "silent:9"},                      // agent out of range
		{"-adversary", "silent:0,1,2,3"},                // exceeds t
		{"-inits", "01"},                                // wrong length
		{"-inits", "01x01"},                             // bad digit
		{"-format", "bogus", "-n", "3", "-t", "1"},      // unknown format
		{"-stack", "naive", "-n", "3", "-t", "1", "-x"}, // unknown flag
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestMakeInits(t *testing.T) {
	got, err := makeInits("0110", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []eba.Value{eba.Zero, eba.One, eba.One, eba.Zero}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inits[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMakeAdversarySilentList(t *testing.T) {
	pat, err := makeAdversary("silent:0, 2", 4, 2, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Nonfaulty(0) || pat.Nonfaulty(2) || !pat.Nonfaulty(1) {
		t.Error("silent list not applied")
	}
}

func TestMakeStackComposedName(t *testing.T) {
	// A composition matching a registered pairing gets its canonical name.
	st, err := makeStack("fip+pmin", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "fip+pmin" {
		t.Errorf("stack name = %q, want fip+pmin", st.Name)
	}
	// An ad-hoc pairing is named after its parts.
	st, err = makeStack("basic+pmin", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "basic+pmin" {
		t.Errorf("stack name = %q, want basic+pmin", st.Name)
	}
}

func TestNaiveStackReportsViolationWithoutFailing(t *testing.T) {
	// The naive stack may violate the spec; ebarun flags it but exits 0
	// (it is the documented counterexample). Construct r′ via random —
	// simplest is the silent adversary where naive still agrees; just
	// check the command completes.
	if err := run([]string{"-stack", "naive", "-n", "3", "-t", "1", "-adversary", "silent:0", "-inits", "011"}); err != nil {
		t.Errorf("naive run failed: %v", err)
	}
}
