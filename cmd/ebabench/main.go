// Command ebabench regenerates every experiment table of the
// reproduction (DESIGN.md lists the index; EXPERIMENTS.md records the
// outputs): the message-complexity and decision-time claims of Section 8,
// Example 7.1, the termination bound, the machine-checked theorems, and
// the crash-vs-omission ablation. Randomized scenario sweeps fan out over
// the library's batch Runner; -parallel controls the worker count and
// never changes the numbers (batches are deterministic and
// order-preserving).
//
// Usage:
//
//	ebabench                  # everything (model checking takes ~1 min)
//	ebabench -skip-slow       # simulation experiments only
//	ebabench -trials 2000     # more random trials
//	ebabench -parallel 4      # 4 batch workers for the scenario sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebabench", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", experiments.DefaultConfig.Seed, "random seed")
		trials   = fs.Int("trials", experiments.DefaultConfig.Trials, "random trials per experiment")
		parallel = fs.Int("parallel", 0, "batch workers for the scenario sweeps (0 = one per CPU)")
		skipSlow = fs.Bool("skip-slow", false, "skip the exhaustive model-checking experiments")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Parallelism: *parallel, SkipSlow: *skipSlow}
	fmt.Printf("Reproduction harness — Alpturer, Halpern, van der Meyden (PODC 2023)\n")
	fmt.Printf("seed=%d trials=%d parallel=%d skip-slow=%v\n\n", cfg.Seed, cfg.Trials, cfg.Parallelism, cfg.SkipSlow)

	failures := 0
	start := time.Now()
	for _, gen := range experiments.Generators(cfg) {
		t0 := time.Now()
		tb := gen()
		fmt.Print(tb.Render())
		fmt.Printf("  (%.2fs)\n\n", time.Since(t0).Seconds())
		if !tb.Pass {
			failures++
		}
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	fmt.Println("all experiments reproduce the paper's claims")
	return nil
}
