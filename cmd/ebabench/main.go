// Command ebabench regenerates every experiment table of the
// reproduction (DESIGN.md lists the index; EXPERIMENTS.md records the
// outputs): the message-complexity and decision-time claims of Section 8,
// Example 7.1, the termination bound, the machine-checked theorems, and
// the crash-vs-omission ablation. Randomized scenario sweeps fan out over
// the library's batch Runner; -parallel controls the worker count and
// never changes the numbers (batches are deterministic and
// order-preserving).
//
// With -bench-episteme it instead measures the model checker's reference
// workloads (BuildSystem + CheckImplements on γ_fip at n=3,t=1 and
// n=4,t=1, plus the symmetry-quotiented n=4,t=1 and exhaustive n=5,t=1
// builds) and writes the perf-trajectory record — including the
// pre-sharding baseline — to the given JSON file.
//
// With -bench-engine it measures the execution engine's reference
// workloads (the exhaustive fip n=4,t=1 horizon sweep and a min n=8,t=2
// random batch) with arena-backed buffers off and on, writes the record
// — including the pre-arena baseline — to the given JSON file, and fails
// unless the arenas cut allocations per op by at least 2× against that
// baseline.
//
// With -gate baseline.json:current.json (repeatable) it instead runs the
// CI bench-regression gate: the current record fails against the
// committed baseline on more than 25% allocs_per_op growth (engine
// records) or a more-than-2× build_seconds regression (episteme
// records) — strict on allocations, tolerant on wall time.
//
// Usage:
//
//	ebabench                  # everything, including the model checks
//	ebabench -skip-slow       # simulation experiments only
//	ebabench -trials 2000     # more random trials
//	ebabench -parallel 4      # 4 workers for sweeps and model checking
//	ebabench -bench-episteme BENCH_episteme.json
//	ebabench -bench-engine BENCH_engine.json
//	ebabench -gate BENCH_engine.json:BENCH_engine.ci.json \
//	         -gate BENCH_episteme.json:BENCH_episteme.ci.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// gatePairs collects repeated -gate baseline:current flags.
type gatePairs []string

func (g *gatePairs) String() string { return strings.Join(*g, ",") }

func (g *gatePairs) Set(s string) error {
	if !strings.Contains(s, ":") {
		return fmt.Errorf("gate spec %q is not of the form baseline.json:current.json", s)
	}
	*g = append(*g, s)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebabench", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", experiments.DefaultConfig.Seed, "random seed")
		trials    = fs.Int("trials", experiments.DefaultConfig.Trials, "random trials per experiment")
		parallel  = fs.Int("parallel", 0, "workers for the scenario sweeps and model checks (0 = one per CPU)")
		skipSlow  = fs.Bool("skip-slow", false, "skip the exhaustive model-checking experiments")
		benchOut  = fs.String("bench-episteme", "", "measure the model checker's reference workloads and write the perf record to this JSON file (skips the experiment tables)")
		engineOut = fs.String("bench-engine", "", "measure the engine's reference workloads with arenas off/on and write the perf record to this JSON file (skips the experiment tables)")
		serveOut  = fs.String("bench-serve", "", "measure the serving layer's mixed-load throughput and write the perf record to this JSON file (skips the experiment tables)")
		benchReps = fs.Int("bench-reps", 3, "repetitions per workload for -bench-episteme / -bench-engine / -bench-serve (medians are reported)")
	)
	var gates gatePairs
	fs.Var(&gates, "gate", "bench-regression gate, as baseline.json:current.json (repeatable; skips everything else)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if len(gates) > 0 {
		return runGates(gates)
	}
	if *benchOut != "" {
		return benchEpisteme(*benchOut, *parallel, *benchReps)
	}
	if *engineOut != "" {
		return benchEngine(*engineOut, *benchReps)
	}
	if *serveOut != "" {
		return benchServe(*serveOut, *benchReps)
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Parallelism: *parallel, SkipSlow: *skipSlow}
	fmt.Printf("Reproduction harness — Alpturer, Halpern, van der Meyden (PODC 2023)\n")
	fmt.Printf("seed=%d trials=%d parallel=%d skip-slow=%v\n\n", cfg.Seed, cfg.Trials, cfg.Parallelism, cfg.SkipSlow)

	failures := 0
	start := time.Now()
	for _, gen := range experiments.Generators(cfg) {
		t0 := time.Now()
		tb := gen()
		fmt.Print(tb.Render())
		fmt.Printf("  (%.2fs)\n\n", time.Since(t0).Seconds())
		if !tb.Pass {
			failures++
		}
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	fmt.Println("all experiments reproduce the paper's claims")
	return nil
}

// runGates runs the bench-regression gate over every baseline:current
// pair, printing each verdict; any violation fails the run.
func runGates(gates gatePairs) error {
	failures := 0
	for _, pair := range gates {
		basePath, currPath, _ := strings.Cut(pair, ":")
		base, err := os.ReadFile(basePath)
		if err != nil {
			return err
		}
		curr, err := os.ReadFile(currPath)
		if err != nil {
			return err
		}
		violations, err := experiments.GateBench(base, curr)
		if err != nil {
			return fmt.Errorf("gate %s: %w", pair, err)
		}
		if len(violations) == 0 {
			fmt.Printf("gate %s vs %s: OK\n", currPath, basePath)
			continue
		}
		failures += len(violations)
		fmt.Printf("gate %s vs %s: FAILED\n", currPath, basePath)
		for _, v := range violations {
			fmt.Println("  " + v)
		}
	}
	if failures > 0 {
		return fmt.Errorf("bench gate: %d regression(s); commit a refreshed baseline if intentional, or apply the bench-regression override label (see README)", failures)
	}
	return nil
}

// benchEngine measures the engine's reference workloads with arenas off
// and on, writes the perf-trajectory record, and enforces the arena
// acceptance bar (≥ 2× fewer allocs/op than the pre-arena baseline).
func benchEngine(path string, reps int) error {
	fmt.Printf("benchmarking the engine hot path (reps=%d)...\n", reps)
	bench, err := experiments.BenchEngine(reps)
	if err != nil {
		return err
	}
	for _, e := range bench.Entries {
		mode := "arenas=off"
		if e.Arenas {
			mode = "arenas=on "
		}
		line := fmt.Sprintf("  %-18s %s runs=%d ns/op=%d B/op=%d allocs/op=%d",
			e.Name, mode, e.Runs, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		if base, ok := bench.Baseline[e.Name]; ok && e.Arenas && e.AllocsPerOp > 0 {
			line += fmt.Sprintf("  (%.1fx fewer allocs than pre-arena baseline)",
				float64(base.AllocsPerOp)/float64(e.AllocsPerOp))
		}
		fmt.Println(line)
	}
	data, err := bench.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return bench.CheckAcceptance()
}

// benchServe measures the serving layer's mixed-load throughput against
// in-process ebaserve instances and writes the perf-trajectory record.
// Any verification failure in the load is an error here, not just a
// gated number.
func benchServe(path string, reps int) error {
	fmt.Printf("benchmarking the serving layer (reps=%d)...\n", reps)
	bench, err := experiments.BenchServe(reps)
	if err != nil {
		return err
	}
	for _, e := range bench.Entries {
		if e.Errors != 0 {
			return fmt.Errorf("%s: %d failed requests — served responses must verify", e.Name, e.Errors)
		}
		fmt.Printf("  %s: %d requests ×%d  %.0f req/s  p50=%.1fms p99=%.1fms  records=%d retries=%d\n",
			e.Name, e.Requests, e.Concurrency, e.RequestsPerSecond, e.P50Millis, e.P99Millis, e.Records, e.Retried429)
	}
	data, err := bench.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchEpisteme measures the model checker's reference workloads and
// writes the perf-trajectory record.
func benchEpisteme(path string, parallel, reps int) error {
	fmt.Printf("benchmarking the model checker (parallel=%d, reps=%d)...\n", parallel, reps)
	bench, err := experiments.BenchEpisteme(parallel, reps)
	if err != nil {
		return err
	}
	for _, e := range bench.Entries {
		if e.Mismatches != 0 {
			return fmt.Errorf("%s: %d mismatches — Theorem A.21 should machine-check", e.Name, e.Mismatches)
		}
		line := fmt.Sprintf("  %s: runs=%d build=%.4fs check=%.4fs", e.Name, e.Runs, e.BuildSeconds, e.CheckImplementsSeconds)
		if e.Quotient && e.RepRuns > 0 {
			line += fmt.Sprintf("  (quotient: %d representatives executed, %.1fx fewer)",
				e.RepRuns, float64(e.Runs)/float64(e.RepRuns))
		}
		if base, ok := bench.Baseline[e.Name]; ok {
			now := e.BuildSeconds + e.CheckImplementsSeconds
			was := base.BuildSeconds + base.CheckImplementsSeconds
			if now > 0 {
				line += fmt.Sprintf("  (%.2fx vs pre-sharding baseline)", was/now)
			}
		}
		fmt.Println(line)
	}
	data, err := bench.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
