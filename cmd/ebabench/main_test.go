package main

import "testing"

func TestBenchSkipSlowEndToEnd(t *testing.T) {
	if err := run([]string{"-skip-slow", "-trials", "25", "-seed", "7"}); err != nil {
		t.Errorf("ebabench failed: %v", err)
	}
}

func TestBenchFlagError(t *testing.T) {
	if err := run([]string{"-unknown"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
