// Command ebavet is the repo's contract checker: a go/analysis
// multichecker enforcing the arena-ownership, determinism,
// cancellation-cause, and error-taxonomy contracts (see
// internal/analysis). It speaks the `go vet -vettool` protocol, which
// is how CI and developers run it:
//
//	go build -o bin/ebavet ./cmd/ebavet
//	go vet -vettool=$(pwd)/bin/ebavet ./...
//
// Flag hygiene for local triage (neither is used in CI, which always
// runs the full suite):
//
//	ebavet -list                 print the analyzer catalog with one-line contracts
//	ebavet -disable=name[,name]  drop analyzers for this invocation
//
// Because `go vet` owns the command line of a vettool, -disable is
// also honored from the EBAVET_DISABLE environment variable:
//
//	EBAVET_DISABLE=determinism go vet -vettool=$(pwd)/bin/ebavet ./...
package main

import (
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/suite"
)

func main() {
	var disabled []string
	if env := os.Getenv("EBAVET_DISABLE"); env != "" {
		disabled = append(disabled, strings.Split(env, ",")...)
	}

	// Peel off ebavet's own flags before unitchecker parses the rest:
	// unitchecker owns the flag set of a vettool, so -list/-disable are
	// recognized positionally from the raw arguments.
	args := os.Args[1:]
	rest := args[:0:0]
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-list" || a == "--list":
			suite.List(os.Stdout)
			return
		case strings.HasPrefix(a, "-disable=") || strings.HasPrefix(a, "--disable="):
			disabled = append(disabled, strings.Split(a[strings.Index(a, "=")+1:], ",")...)
		case a == "-disable" || a == "--disable":
			if i+1 < len(args) {
				i++
				disabled = append(disabled, strings.Split(args[i], ",")...)
			}
		default:
			rest = append(rest, a)
		}
	}

	analyzers, err := suite.Select(disabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Args = append(os.Args[:1], rest...)
	unitchecker.Main(analyzers...)
}
