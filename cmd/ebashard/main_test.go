package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// shardFiles runs the min n=3,t=1 sweep as k stripes into dir and
// returns the stream paths.
func shardFiles(t *testing.T, dir string, k int) []string {
	t.Helper()
	paths := make([]string, k)
	for i := 0; i < k; i++ {
		paths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
		args := []string{"-stack", "min", "-n", "3", "-t", "1",
			"-shard", string(rune('0'+i)) + "/" + string(rune('0'+k)), "-out", paths[i]}
		if err := run(args); err != nil {
			t.Fatalf("ebashard %v: %v", args, err)
		}
	}
	return paths
}

// TestShardMergeCmpEquivalence is the CLI face of the CI smoke: three
// shard processes + merge produce the byte-identical stream a single
// 0/1 process writes.
func TestShardMergeCmpEquivalence(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.jsonl")
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-shard", "0/1", "-out", single}); err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	paths := shardFiles(t, dir, 3)
	merged := filepath.Join(dir, "merged.jsonl")
	if err := run(append([]string{"-merge", "-out", merged}, paths...)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged stream differs from the single-process stream")
	}
}

// TestCheckShardMergeVerdicts runs the model-checker mode end to end:
// per-shard indexes, merged verdicts, and equality with the 1-shard
// verdict output.
func TestCheckShardMergeVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	idxs := make([]string, 3)
	for i := 0; i < 3; i++ {
		idxs[i] = filepath.Join(dir, "idx"+string(rune('0'+i))+".json")
		if err := run([]string{"-check", "-stack", "min", "-n", "3", "-t", "1",
			"-shard", string(rune('0'+i)) + "/3", "-out", idxs[i]}); err != nil {
			t.Fatalf("index shard %d: %v", i, err)
		}
	}
	idxSingle := filepath.Join(dir, "idx-single.json")
	if err := run([]string{"-check", "-stack", "min", "-n", "3", "-t", "1", "-shard", "0/1", "-out", idxSingle}); err != nil {
		t.Fatalf("single index: %v", err)
	}

	v3 := filepath.Join(dir, "v3.txt")
	if err := run(append([]string{"-check", "-merge", "-safety", "-out", v3}, idxs...)); err != nil {
		t.Fatalf("merged verdicts: %v", err)
	}
	v1 := filepath.Join(dir, "v1.txt")
	if err := run([]string{"-check", "-merge", "-safety", "-out", v1, idxSingle}); err != nil {
		t.Fatalf("single verdicts: %v", err)
	}
	got, _ := os.ReadFile(v3)
	want, _ := os.ReadFile(v1)
	if len(want) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("sharded verdicts differ from single-process ones:\n%s\nvs\n%s", got, want)
	}
	if !bytes.Contains(got, []byte("implements P0: OK")) {
		t.Fatalf("verdicts missing the implements line:\n%s", got)
	}
}

// TestShardEnvDefault checks $EBA_SHARD supplies the stripe when -shard
// is not given.
func TestShardEnvDefault(t *testing.T) {
	dir := t.TempDir()
	flagged := filepath.Join(dir, "flagged.jsonl")
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-shard", "1/2", "-out", flagged}); err != nil {
		t.Fatalf("flagged run: %v", err)
	}
	t.Setenv("EBA_SHARD", "1/2")
	envd := filepath.Join(dir, "envd.jsonl")
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-out", envd}); err != nil {
		t.Fatalf("env run: %v", err)
	}
	got, _ := os.ReadFile(envd)
	want, _ := os.ReadFile(flagged)
	if len(want) == 0 || !bytes.Equal(got, want) {
		t.Fatal("$EBA_SHARD did not select the same stripe as -shard")
	}
}

// TestShardErrors covers the argument-validation paths.
func TestShardErrors(t *testing.T) {
	if err := run([]string{"-shard", "3/3"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-merge"}); err == nil {
		t.Error("merge with no files accepted")
	}
	if err := run([]string{"-check", "-merge"}); err == nil {
		t.Error("check merge with no files accepted")
	}
	if err := run([]string{"-stack", "bogus", "-out", os.DevNull}); err == nil {
		t.Error("unknown stack accepted")
	}
}
