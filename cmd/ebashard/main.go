// Command ebashard runs one stripe of an exhaustive sweep — or of the
// model checker's enumeration — and merges stripes back together, so a
// sweep that saturates one machine can run as K cooperating processes.
//
// Striding is deterministic: stripe i of K holds the scenarios at global
// ordinals ≡ i mod K of the canonical enumeration, so K processes given
// the same parameters and distinct -shard values partition the sweep
// exactly. Merging verifies it: headers must agree, record digests must
// match their content, and ordinals must cover 0..total-1 with no gap
// and no overlap. The merged outcome stream is byte-identical to the
// stream a single -shard 0/1 process writes (the CI shard-equivalence
// smoke pins this with cmp), and a merged model-checker index yields
// verdicts bit-identical to the single-process checker.
//
// Sweep mode (outcome streams):
//
//	ebashard -stack fip -n 3 -t 1 -shard 0/3 -out shard0.jsonl
//	ebashard -stack fip -n 3 -t 1 -shard 1/3 -out shard1.jsonl
//	ebashard -stack fip -n 3 -t 1 -shard 2/3 -out shard2.jsonl
//	ebashard -merge -out merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl
//
// Model-checker mode (partial epistemic indexes):
//
//	ebashard -check -stack fip -n 3 -t 1 -shard 0/3 -out idx0.json   # ×3
//	ebashard -check -merge idx0.json idx1.json idx2.json
//
// -check -merge re-interns the partial indexes into one system and
// prints deterministic verdict lines (implements / safety / optimality),
// so sharded and unsharded checker outputs can be diffed directly.
// -shard defaults to $EBA_SHARD when set ("i/k"), else to 0/1.
//
// -quotient reduces either mode's enumeration to one representative per
// agent-permutation orbit (up to n! fewer executions): sweep-mode
// outcome records carry their orbit size as a multiplicity, and
// quotiented checker indexes are expanded back to the full system at
// -check -merge time, so the verdict lines still diff clean against an
// unquotiented run's.
//
// Result cache: -cache DIR answers already-swept scenarios from a
// persistent content-addressed store instead of re-executing them —
// streams and indexes stay byte-identical, a warm re-run just skips the
// execution. -cache-url URL consults a shared cache server instead
// (ebacoord -cache serves one at <coordinator>/cache); giving both
// tiers the directory over the server. Keys fold in the binary's VCS
// revision, so a rebuilt binary never reuses stale entries, and every
// entry is digest-verified on read — damage means recompute, never a
// wrong answer. -cache-gc compacts the directory (bound its size with
// -cache-max-bytes) and exits.
//
//	ebashard -stack fip -n 4 -t 1 -quotient -cache ~/.eba-cache -out sweep.jsonl
//	ebashard -cache-gc -cache ~/.eba-cache -cache-max-bytes 1000000000
//
// Fleet mode: -worker joins a cross-machine fabric instead of running a
// fixed -shard stripe. The worker pulls stripe leases from the ebacoord
// coordinator at the given URL, runs them through the same paths as
// above, heartbeats while a stripe runs, and uploads sealed results with
// bounded retry and backoff. SIGTERM drains gracefully (the stripe in
// hand finishes and uploads); a second signal aborts.
//
//	ebashard -worker http://coord:8123 -parallel 4
//
// Exit codes separate failure classes: 2 for verification failures
// (torn/tampered data, digest conflicts, failed verdicts — a rerun
// reproduces them), 3 for transport failures (coordinator unreachable
// after bounded retries — a rerun might not), 1 for everything else.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebashard:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps an error to the command's exit code: verification
// failures and transport failures are distinguishable by the caller.
func exitCode(err error) int {
	switch {
	case errors.Is(err, eba.ErrFabricVerification):
		return 2
	case errors.Is(err, eba.ErrFabricTransport):
		return 3
	default:
		return 1
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebashard", flag.ContinueOnError)
	var (
		stackName  = fs.String("stack", "fip", "protocol stack (see eba.Stacks)")
		n          = fs.Int("n", 3, "number of agents")
		t          = fs.Int("t", 1, "failure bound t")
		out        = fs.String("out", "-", "output file (\"-\" for stdout)")
		merge      = fs.Bool("merge", false, "merge the listed shard files instead of running a stripe")
		check      = fs.Bool("check", false, "model-checker mode: build (or, with -merge, merge) epistemic shard indexes")
		parallel   = fs.Int("parallel", 0, "workers per process (0 = one per CPU; never changes the output)")
		spec       = fs.Bool("spec", true, "sweep mode: spec-check every run (a violation aborts the shard)")
		safety     = fs.Bool("safety", false, "-check -merge: also check the Definition 6.2 safety condition")
		optimality = fs.Bool("optimality", true, "-check -merge: for fip, check the Theorem 7.5 characterization")
		quotient   = fs.Bool("quotient", false, "enumerate one representative per agent-permutation orbit (weighting outcomes by orbit size; -check -merge expands automatically)")
		worker     = fs.String("worker", "", "join the fabric coordinator at this URL as a worker")
		workerID   = fs.String("id", "", "worker identity reported to the coordinator (default hostname-pid)")
		timeout    = fs.Duration("timeout", 30*time.Second, "worker mode: per-request timeout on every network call")
		cacheDir   = fs.String("cache", "", "result cache directory: answer already-swept scenarios from it instead of re-executing")
		cacheURL   = fs.String("cache-url", "", "shared result cache server URL (ebacoord -cache serves one at <coordinator>/cache); combine with -cache for a local tier over it")
		cacheGC    = fs.Bool("cache-gc", false, "compact the -cache directory (drop dead and damaged entries) and exit")
		cacheMax   = fs.Int64("cache-max-bytes", 0, "-cache-gc: evict oldest entries until the cache payload fits this budget (0 = keep everything live)")
	)
	shard := eba.ShardSpec{}
	if env := os.Getenv(eba.ShardEnvVar); env != "" {
		parsed, err := eba.ParseShardSpec(env)
		if err != nil {
			return fmt.Errorf("$%s: %w", eba.ShardEnvVar, err)
		}
		shard = parsed
	}
	fs.Var(&shard, "shard", "stripe to run, as index/count (default $"+eba.ShardEnvVar+" or 0/1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if shard == (eba.ShardSpec{}) {
		// No -shard and no $EBA_SHARD: the documented default is the
		// whole sweep (RunShard takes the raw index/count pair, which
		// must not stay 0/0).
		shard = eba.ShardSpec{Index: 0, Count: 1}
	}

	if *cacheGC {
		return runCacheGC(*cacheDir, *cacheMax)
	}
	store, closeStore, err := openResultCache(*cacheDir, *cacheURL)
	if err != nil {
		return err
	}
	defer closeStore()

	switch {
	case *worker != "":
		return runWorker(*worker, *workerID, *parallel, *timeout, store)
	case *merge && *check:
		return mergeIndexes(fs.Args(), *out, *parallel, *safety, *optimality)
	case *merge:
		return mergeStreams(fs.Args(), *out)
	case *check:
		return buildIndex(*stackName, *n, *t, shard, *out, *parallel, *quotient, store)
	default:
		return runStripe(*stackName, *n, *t, shard, *out, *parallel, *spec, *quotient, store)
	}
}

// openResultCache resolves the -cache/-cache-url pair into one store:
// the directory alone, the server alone, or the directory tiered over
// the server (local hits win, remote hits back-fill, puts write to
// both). Returns a nil store when neither flag is set.
func openResultCache(dir, url string) (eba.ResultCache, func() error, error) {
	noop := func() error { return nil }
	switch {
	case dir == "" && url == "":
		return nil, noop, nil
	case dir == "":
		return eba.NewCacheClient(url), noop, nil
	}
	local, err := eba.OpenCache(dir)
	if err != nil {
		return nil, nil, err
	}
	if url == "" {
		return local, local.Close, nil
	}
	return eba.NewTieredCache(local, eba.NewCacheClient(url)), local.Close, nil
}

// runCacheGC compacts the cache directory and reports what survived.
func runCacheGC(dir string, maxBytes int64) error {
	if dir == "" {
		return fmt.Errorf("-cache-gc needs -cache DIR")
	}
	c, err := eba.OpenCache(dir)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.GC(maxBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebashard: cache %s: %d entries kept, %d dropped; %d segment(s) %d bytes -> %d segment(s) %d bytes\n",
		dir, res.Kept, res.Dropped, res.SegmentsBefore, res.BytesBefore, res.SegmentsAfter, res.BytesAfter)
	return nil
}

// runWorker joins the fabric coordinator at coordURL and runs stripes
// until the job completes. The first SIGTERM/SIGINT drains gracefully —
// the stripe in hand finishes and uploads — and a second aborts.
func runWorker(coordURL, id string, parallel int, timeout time.Duration, store eba.ResultCache) error {
	w, err := eba.NewFabricWorker(eba.WorkerConfig{
		Coordinator:    coordURL,
		ID:             id,
		Parallelism:    parallel,
		RequestTimeout: timeout,
		Cache:          store,
		Fingerprint:    eba.CacheFingerprint(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ebashard: draining — finishing the stripe in hand (signal again to abort)")
		w.Drain()
		<-sig
		cancel(fmt.Errorf("aborted by second signal"))
	}()
	sum, err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "ebashard: worker %s done: %d stripe(s), %d records, %d lease(s) lost, %d reject(s)\n",
		w.ID(), sum.Stripes, sum.Records, sum.LeasesLost, sum.Rejects)
	return err
}

// openOut resolves -out: stdout for "-", else the file (truncated).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runStripe executes one stripe of the stack's exhaustive SO(t) sweep
// and writes its outcome stream. With quotient, the sweep is reduced to
// one representative per agent-permutation orbit BEFORE striding, so the
// stripes partition the representative enumeration and each outcome
// record carries its orbit size as a multiplicity.
func runStripe(stackName string, n, t int, shard eba.ShardSpec, out string, parallel int, spec, quotient bool, store eba.ResultCache) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	stack, err := eba.NewStack(stackName, eba.WithN(n), eba.WithT(t))
	if err != nil {
		return err
	}
	src, err := eba.SourceSO(n, t, stack.Horizon())
	if err != nil {
		return err
	}
	if quotient {
		src = eba.SourceQuotient(src)
	}
	opts := []eba.RunnerOption{eba.WithParallelism(parallel), eba.WithBufferReuse()}
	if spec {
		opts = append(opts, eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}))
	}
	if store != nil {
		opts = append(opts, eba.WithResultCache(store, eba.CacheFingerprint()))
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	sum, err := eba.NewRunner(stack, opts...).RunShard(context.Background(), src, shard.Index, shard.Count, w)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	cacheNote := ""
	if store != nil {
		// The CI warm-cache smoke greps executed=0 off this line.
		cacheNote = fmt.Sprintf(" (executed=%d hits=%d)", sum.Executed, sum.CacheHits)
	}
	if sum.Weighted != sum.Records {
		fmt.Fprintf(os.Stderr, "ebashard: shard %s of %s n=%d t=%d: %d runs standing for %d, digest %s%s\n",
			shard.String(), stack.Name, n, t, sum.Records, sum.Weighted, sum.Digest, cacheNote)
		return nil
	}
	fmt.Fprintf(os.Stderr, "ebashard: shard %s of %s n=%d t=%d: %d runs, digest %s%s\n",
		shard.String(), stack.Name, n, t, sum.Records, sum.Digest, cacheNote)
	return nil
}

// mergeStreams fans the listed outcome streams back into canonical order.
func mergeStreams(paths []string, out string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs the shard files as arguments")
	}
	readers := make([]io.Reader, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		readers[i] = f
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	sum, err := eba.MergeOutcomes(w, readers...)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if sum.Weighted != sum.Total {
		fmt.Fprintf(os.Stderr, "ebashard: merged %d shards: %d runs standing for %d, digest %s\n",
			sum.Shards, sum.Total, sum.Weighted, sum.Digest)
		return nil
	}
	fmt.Fprintf(os.Stderr, "ebashard: merged %d shards: %d runs, digest %s\n", sum.Shards, sum.Total, sum.Digest)
	return nil
}

// buildIndex builds one stripe of the model checker's enumeration and
// writes the partial epistemic index. With quotient, the stripe holds
// orbit representatives with their multiplicities; -check -merge expands
// the merged system back to the full sweep before writing verdicts.
func buildIndex(stackName string, n, t int, shard eba.ShardSpec, out string, parallel int, quotient bool, store eba.ResultCache) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	stack, err := eba.NewStack(stackName, eba.WithN(n), eba.WithT(t))
	if err != nil {
		return err
	}
	opts := []eba.CheckOption{eba.WithCheckParallelism(parallel)}
	if quotient {
		opts = append(opts, eba.WithCheckQuotient())
	}
	if store != nil {
		opts = append(opts, eba.WithCheckCache(store, eba.CacheFingerprint()))
	}
	idx, err := eba.BuildShardIndex(context.Background(), stack, shard.Index, shard.Count, opts...)
	if err != nil {
		return err
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	err = eba.WriteShardIndex(w, idx)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebashard: indexed shard %s of %s n=%d t=%d: %d runs\n",
		shard.String(), stack.Name, n, t, len(idx.Runs))
	return nil
}

// mergeIndexes re-interns the listed partial indexes into one system and
// prints deterministic verdict lines to -out.
func mergeIndexes(paths []string, out string, parallel int, safety, optimality bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("-check -merge needs the index files as arguments")
	}
	shards := make([]*eba.ShardIndex, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		idx, err := eba.ReadShardIndex(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		shards[i] = idx
	}
	ctx := context.Background()
	sys, err := eba.MergeSystems(ctx, shards, eba.WithCheckParallelism(parallel))
	if err != nil {
		return err
	}

	// Stack is optional index metadata; MergeSystems has already verified
	// that every non-empty name agrees, so the first one found is THE name.
	stackName := ""
	for _, idx := range shards {
		if idx.Stack != "" {
			stackName = idx.Stack
			break
		}
	}
	if stackName == "" {
		return fmt.Errorf("shard indexes carry no stack name (rebuild them with ebashard -check, which records it)")
	}

	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	// The one shared verdict writer: the fabric coordinator's check-job
	// merge goes through the same function, so a fleet run's verdicts and
	// this command's diff clean.
	verdictErr := eba.WriteVerdicts(ctx, w, sys, stackName, eba.VerdictOptions{Safety: safety, Optimality: optimality})
	if cerr := closeOut(); verdictErr == nil {
		verdictErr = cerr
	}
	return verdictErr
}
