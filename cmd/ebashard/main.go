// Command ebashard runs one stripe of an exhaustive sweep — or of the
// model checker's enumeration — and merges stripes back together, so a
// sweep that saturates one machine can run as K cooperating processes.
//
// Striding is deterministic: stripe i of K holds the scenarios at global
// ordinals ≡ i mod K of the canonical enumeration, so K processes given
// the same parameters and distinct -shard values partition the sweep
// exactly. Merging verifies it: headers must agree, record digests must
// match their content, and ordinals must cover 0..total-1 with no gap
// and no overlap. The merged outcome stream is byte-identical to the
// stream a single -shard 0/1 process writes (the CI shard-equivalence
// smoke pins this with cmp), and a merged model-checker index yields
// verdicts bit-identical to the single-process checker.
//
// Sweep mode (outcome streams):
//
//	ebashard -stack fip -n 3 -t 1 -shard 0/3 -out shard0.jsonl
//	ebashard -stack fip -n 3 -t 1 -shard 1/3 -out shard1.jsonl
//	ebashard -stack fip -n 3 -t 1 -shard 2/3 -out shard2.jsonl
//	ebashard -merge -out merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl
//
// Model-checker mode (partial epistemic indexes):
//
//	ebashard -check -stack fip -n 3 -t 1 -shard 0/3 -out idx0.json   # ×3
//	ebashard -check -merge idx0.json idx1.json idx2.json
//
// -check -merge re-interns the partial indexes into one system and
// prints deterministic verdict lines (implements / safety / optimality),
// so sharded and unsharded checker outputs can be diffed directly.
// -shard defaults to $EBA_SHARD when set ("i/k"), else to 0/1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebashard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebashard", flag.ContinueOnError)
	var (
		stackName  = fs.String("stack", "fip", "protocol stack (see eba.Stacks)")
		n          = fs.Int("n", 3, "number of agents")
		t          = fs.Int("t", 1, "failure bound t")
		out        = fs.String("out", "-", "output file (\"-\" for stdout)")
		merge      = fs.Bool("merge", false, "merge the listed shard files instead of running a stripe")
		check      = fs.Bool("check", false, "model-checker mode: build (or, with -merge, merge) epistemic shard indexes")
		parallel   = fs.Int("parallel", 0, "workers per process (0 = one per CPU; never changes the output)")
		spec       = fs.Bool("spec", true, "sweep mode: spec-check every run (a violation aborts the shard)")
		safety     = fs.Bool("safety", false, "-check -merge: also check the Definition 6.2 safety condition")
		optimality = fs.Bool("optimality", true, "-check -merge: for fip, check the Theorem 7.5 characterization")
	)
	shard := eba.ShardSpec{}
	if env := os.Getenv(eba.ShardEnvVar); env != "" {
		parsed, err := eba.ParseShardSpec(env)
		if err != nil {
			return fmt.Errorf("$%s: %w", eba.ShardEnvVar, err)
		}
		shard = parsed
	}
	fs.Var(&shard, "shard", "stripe to run, as index/count (default $"+eba.ShardEnvVar+" or 0/1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *merge && *check:
		return mergeIndexes(fs.Args(), *out, *parallel, *safety, *optimality)
	case *merge:
		return mergeStreams(fs.Args(), *out)
	case *check:
		return buildIndex(*stackName, *n, *t, shard, *out, *parallel)
	default:
		return runStripe(*stackName, *n, *t, shard, *out, *parallel, *spec)
	}
}

// openOut resolves -out: stdout for "-", else the file (truncated).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runStripe executes one stripe of the stack's exhaustive SO(t) sweep
// and writes its outcome stream.
func runStripe(stackName string, n, t int, shard eba.ShardSpec, out string, parallel int, spec bool) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	stack, err := eba.NewStack(stackName, eba.WithN(n), eba.WithT(t))
	if err != nil {
		return err
	}
	src, err := eba.SourceSO(n, t, stack.Horizon())
	if err != nil {
		return err
	}
	opts := []eba.RunnerOption{eba.WithParallelism(parallel), eba.WithBufferReuse()}
	if spec {
		opts = append(opts, eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}))
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	sum, err := eba.NewRunner(stack, opts...).RunShard(context.Background(), src, shard.Index, shard.Count, w)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebashard: shard %s of %s n=%d t=%d: %d runs, digest %s\n",
		shard.String(), stack.Name, n, t, sum.Records, sum.Digest)
	return nil
}

// mergeStreams fans the listed outcome streams back into canonical order.
func mergeStreams(paths []string, out string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs the shard files as arguments")
	}
	readers := make([]io.Reader, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		readers[i] = f
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	sum, err := eba.MergeOutcomes(w, readers...)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebashard: merged %d shards: %d runs, digest %s\n", sum.Shards, sum.Total, sum.Digest)
	return nil
}

// buildIndex builds one stripe of the model checker's enumeration and
// writes the partial epistemic index.
func buildIndex(stackName string, n, t int, shard eba.ShardSpec, out string, parallel int) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	stack, err := eba.NewStack(stackName, eba.WithN(n), eba.WithT(t))
	if err != nil {
		return err
	}
	idx, err := eba.BuildShardIndex(context.Background(), stack, shard.Index, shard.Count,
		eba.WithCheckParallelism(parallel))
	if err != nil {
		return err
	}
	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	err = eba.WriteShardIndex(w, idx)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebashard: indexed shard %s of %s n=%d t=%d: %d runs\n",
		shard.String(), stack.Name, n, t, len(idx.Runs))
	return nil
}

// mergeIndexes re-interns the listed partial indexes into one system and
// prints deterministic verdict lines to -out.
func mergeIndexes(paths []string, out string, parallel int, safety, optimality bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("-check -merge needs the index files as arguments")
	}
	shards := make([]*eba.ShardIndex, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		idx, err := eba.ReadShardIndex(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		shards[i] = idx
	}
	ctx := context.Background()
	sys, err := eba.MergeSystems(ctx, shards, eba.WithCheckParallelism(parallel))
	if err != nil {
		return err
	}

	// Stack is optional index metadata; MergeSystems has already verified
	// that every non-empty name agrees, so the first one found is THE name.
	stackName := ""
	for _, idx := range shards {
		if idx.Stack != "" {
			stackName = idx.Stack
			break
		}
	}
	if stackName == "" {
		return fmt.Errorf("shard indexes carry no stack name (rebuild them with ebashard -check, which records it)")
	}
	var info eba.StackInfo
	for _, si := range eba.Stacks() {
		if si.Name == stackName {
			info = si
			break
		}
	}
	if info.Name == "" {
		return fmt.Errorf("shard indexes name unknown stack %q", stackName)
	}
	if info.Program == "" {
		return fmt.Errorf("stack %q declares no knowledge-based program to check against", stackName)
	}
	prog := eba.ProgramP0
	if info.Program == "P1" {
		prog = eba.ProgramP1
	}

	w, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	verdictErr := printVerdicts(ctx, w, sys, stackName, prog, safety, optimality)
	if cerr := closeOut(); verdictErr == nil {
		verdictErr = cerr
	}
	return verdictErr
}

// printVerdicts writes the deterministic verdict block — no timings, so
// sharded and unsharded outputs diff clean.
func printVerdicts(ctx context.Context, w io.Writer, sys *eba.System, stackName string, prog eba.Program, safety, optimality bool) error {
	fmt.Fprintf(w, "stack: %s (n=%d, t=%d, horizon=%d)\n", stackName, sys.N, sys.T, sys.Horizon)
	fmt.Fprintf(w, "runs: %d\n", len(sys.Runs))

	failed := false
	ms, err := sys.CheckImplements(ctx, prog, 5)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Fprintf(w, "implements %v: OK\n", prog)
	} else {
		failed = true
		fmt.Fprintf(w, "implements %v: FAILED\n", prog)
		for _, m := range ms {
			fmt.Fprintf(w, "  %s\n", m)
		}
	}

	if safety {
		vs, err := sys.CheckSafety(ctx, 5)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Fprintf(w, "safety: OK\n")
		} else {
			fmt.Fprintf(w, "safety: violated\n")
			for _, v := range vs {
				fmt.Fprintf(w, "  %s\n", v)
			}
			if !strings.HasPrefix(stackName, "fip") {
				failed = true
			}
		}
	}

	if optimality && stackName == "fip" {
		vs, err := sys.CheckOptimalityFIP(ctx, -1, 5)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Fprintf(w, "optimality: OK\n")
		} else {
			failed = true
			fmt.Fprintf(w, "optimality: FAILED\n")
			for _, v := range vs {
				fmt.Fprintf(w, "  %s\n", v)
			}
		}
	}
	if failed {
		return fmt.Errorf("verdicts failed")
	}
	return nil
}
