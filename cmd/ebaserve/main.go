// Command ebaserve serves the verification stack over HTTP: sweep
// stripes (byte-identical to ebashard's streams), model-check verdict
// blocks, and epistemic point queries, answered from a hot-System LRU
// with admission control and Prometheus-style /metrics. With -loadtest
// it instead becomes the load harness: it drives a running ebaserve
// with a deterministic mix of concurrent requests, verifies every
// response it can, and prints a summary the bench gate consumes.
//
// Serve (default):
//
//	ebaserve -listen 127.0.0.1:8080 -cache /var/eba-cache -parallel 4
//
// SIGTERM or SIGINT drains gracefully: new work gets 503, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
// A second signal aborts immediately.
//
// Load test:
//
//	ebaserve -loadtest http://127.0.0.1:8080 -requests 2000 -concurrency 64
//
// Exit codes follow the repository taxonomy: 1 for operational errors,
// 2 for verification failures (a served stream or verdict block failed
// its checks), 3 for transport failures.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "ebaserve:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the error taxonomy to distinct exit codes so wrappers
// can tell a failed verification (2) from a flaky network (3).
func exitCode(err error) int {
	switch {
	case errors.Is(err, eba.ErrFabricVerification):
		return 2
	case errors.Is(err, eba.ErrFabricTransport):
		return 3
	default:
		return 1
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebaserve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve on (host:0 picks a free port and logs it)")
	cacheDir := fs.String("cache", "", "result cache directory backing builds and sweeps")
	cacheURL := fs.String("cache-url", "", "shared result cache server URL (tiered under -cache when both are set)")
	parallel := fs.Int("parallel", 0, "per-request worker budget cap (0 = GOMAXPROCS)")
	systems := fs.Int("systems", 0, "hot Systems kept in the LRU (0 = default 8)")
	builds := fs.Int("builds", 0, "concurrent System builds (0 = default 2)")
	inflight := fs.Int("inflight", 0, "concurrent requests before 429 (0 = default 256)")
	quotient := fs.Bool("quotient", false, "build Systems through the symmetry quotient where supported")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests")

	loadURL := fs.String("loadtest", "", "run as the load harness against this base URL instead of serving")
	requests := fs.Int("requests", 1000, "loadtest: total requests to issue")
	concurrency := fs.Int("concurrency", 32, "loadtest: concurrent requests")
	stackName := fs.String("stack", "min", "loadtest: protocol stack the mix exercises")
	n := fs.Int("n", 3, "loadtest: number of agents")
	t := fs.Int("t", 1, "loadtest: failure bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *loadURL != "" {
		return runLoadTest(*loadURL, *requests, *concurrency, *stackName, *n, *t)
	}
	return serve(*listen, *cacheDir, *cacheURL, *parallel, *systems, *builds, *inflight, *quotient, *drainTimeout)
}

func serve(listen, cacheDir, cacheURL string, parallel, systems, builds, inflight int, quotient bool, drainTimeout time.Duration) error {
	store, closeStore, err := openResultCache(cacheDir, cacheURL)
	if err != nil {
		return err
	}
	defer closeStore()

	srv := eba.NewServer(eba.ServerConfig{
		Cache:          store,
		Fingerprint:    eba.CacheFingerprint(),
		MaxSystems:     systems,
		MaxBuilds:      builds,
		MaxInflight:    inflight,
		MaxParallelism: parallel,
		Quotient:       quotient,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ebaserve: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "ebaserve: %v: draining (in-flight %d); signal again to abort\n", s, srv.Inflight())
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "ebaserve: aborted by second signal")
			cancel()
		}()
		done <- hs.Shutdown(ctx)
	}()

	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "ebaserve: drained")
	return nil
}

func runLoadTest(baseURL string, requests, concurrency int, stack string, n, t int) error {
	sum, err := eba.RunLoadTest(context.Background(), eba.LoadTestConfig{
		BaseURL:     baseURL,
		Requests:    requests,
		Concurrency: concurrency,
		Stack:       stack,
		N:           n,
		T:           t,
	})
	if err != nil {
		return err
	}
	out, merr := json.MarshalIndent(sum, "", "  ")
	if merr != nil {
		return merr
	}
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "ebaserve: loadtest %d requests, %d errors, %.0f req/s, p50 %.1fms p99 %.1fms, %d retries\n",
		sum.Requests, sum.Errors, sum.RequestsPerSecond, sum.P50Millis, sum.P99Millis, sum.Retried429)
	return sum.Err()
}

// openResultCache resolves the -cache/-cache-url pair into one store:
// the directory alone, the server alone, or the directory tiered over
// the server. Returns a nil store when neither flag is set.
func openResultCache(dir, url string) (eba.ResultCache, func() error, error) {
	noop := func() error { return nil }
	switch {
	case dir == "" && url == "":
		return nil, noop, nil
	case dir == "":
		return eba.NewCacheClient(url), noop, nil
	}
	local, err := eba.OpenCache(dir)
	if err != nil {
		return nil, nil, err
	}
	if url == "" {
		return local, local.Close, nil
	}
	return eba.NewTieredCache(local, eba.NewCacheClient(url)), local.Close, nil
}
