// Command ebacheck model-checks the paper's knowledge-theoretic claims on
// a small exhaustive system: that a concrete protocol implements its
// knowledge-based program (Theorems 6.5, 6.6, A.21), that the safety
// condition of Definition 6.2 holds (Proposition 6.4), and that the
// optimality characterization of Theorem 7.5 holds over γ_fip. Stack
// names resolve against the library registry.
//
// Usage:
//
//	ebacheck -stack min -n 3 -t 1            # Pmin implements P0
//	ebacheck -stack fip -n 3 -t 1            # Popt implements P1 + Theorem 7.5
//	ebacheck -stack basic -n 3 -t 1 -safety  # + Definition 6.2
//	ebacheck -stack fip-nock -n 3 -t 1       # the ablation implements P0
//
// With -sweep it additionally streams the exhaustive SO(t) scenario sweep
// (every failure pattern × every initial vector) through the Runner's
// source-driven path and spec-checks every run — the brute-force
// Proposition 6.1 counterpart of the knowledge checks, at bounded memory
// however large the sweep. -knowledge=false skips the knowledge checks,
// so `-sweep -knowledge=false` is a fast streaming smoke test.
//
// Everything is exhaustive: expect exponential cost beyond n=4, t=1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebacheck:", err)
		os.Exit(1)
	}
}

// checkableStacks are the registered stacks that declare a
// knowledge-based program to check against (StackInfo.Program): Popt
// implements P1; Pmin, Pbasic, and the ablated Popt-nock implement P0
// over their respective exchanges. Stacks that implement neither program
// (naive, fip+pmin) carry no Program and are excluded, so a stack added
// to the registry picks its checkability there, not here.
func checkableStacks() []string {
	var names []string
	for _, info := range eba.Stacks() {
		if info.Program != "" {
			names = append(names, info.Name)
		}
	}
	return names
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebacheck", flag.ContinueOnError)
	var (
		stackName  = fs.String("stack", "min", "protocol stack: "+strings.Join(checkableStacks(), ", "))
		n          = fs.Int("n", 3, "number of agents")
		t          = fs.Int("t", 1, "failure bound t")
		safety     = fs.Bool("safety", false, "also check the Definition 6.2 safety condition")
		optimality = fs.Bool("optimality", true, "for -stack fip: check the Theorem 7.5 characterization")
		sweep      = fs.Bool("sweep", false, "stream the exhaustive SO(t) scenario sweep through the Runner and spec-check every run")
		knowledge  = fs.Bool("knowledge", true, "run the knowledge-theoretic checks (implements/safety/optimality)")
		parallel   = fs.Int("parallel", 0, "model-checker workers (0 = one per CPU; never changes the verdicts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var info eba.StackInfo
	for _, si := range eba.Stacks() {
		if si.Name == *stackName && si.Program != "" {
			info = si
			break
		}
	}
	if info.Name == "" {
		return fmt.Errorf("unknown or uncheckable stack %q (have %s)",
			*stackName, strings.Join(checkableStacks(), ", "))
	}
	stack, err := eba.NewStack(info.Name, eba.WithN(*n), eba.WithT(*t))
	if err != nil {
		return err
	}
	prog := eba.ProgramP0
	if info.Program == "P1" {
		prog = eba.ProgramP1
	}

	if !*sweep && !*knowledge {
		return fmt.Errorf("nothing to check: -knowledge=false without -sweep selects no checks")
	}
	if *sweep {
		if err := runSweep(stack, *n, *t); err != nil {
			return err
		}
	}
	if !*knowledge {
		fmt.Println("\nall checks passed")
		return nil
	}

	ctx := context.Background()
	fmt.Printf("building exhaustive system for %s (n=%d, t=%d, horizon=%d)...\n",
		stack.Name, *n, *t, stack.Horizon())
	t0 := time.Now()
	sys, err := eba.BuildSystem(ctx, stack, eba.WithCheckParallelism(*parallel))
	if err != nil {
		return err
	}
	fmt.Printf("  %d runs in %.2fs\n\n", len(sys.Runs), time.Since(t0).Seconds())

	fmt.Printf("checking: %s implements %s ... ", stack.Action.Name(), prog)
	t0 = time.Now()
	ms, err := sys.CheckImplements(ctx, prog, 5)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Printf("OK (%.2fs)\n", time.Since(t0).Seconds())
	} else {
		fmt.Printf("FAILED (%.2fs)\n", time.Since(t0).Seconds())
		for _, m := range ms {
			fmt.Println("  ", m)
		}
		return fmt.Errorf("implementation check failed")
	}

	if *safety {
		fmt.Printf("checking: Definition 6.2 safety condition ... ")
		t0 = time.Now()
		vs, err := sys.CheckSafety(ctx, 5)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Printf("OK (%.2fs)\n", time.Since(t0).Seconds())
		} else {
			fmt.Printf("violated (%.2fs)\n", time.Since(t0).Seconds())
			for _, v := range vs {
				fmt.Println("  ", v)
			}
			if strings.HasPrefix(stack.Name, "fip") {
				fmt.Println("  (expected: Section 6 notes P0 is not safe wrt full information)")
			} else {
				return fmt.Errorf("safety check failed")
			}
		}
	}

	if stack.Name == "fip" && *optimality {
		fmt.Printf("checking: Theorem 7.5 optimality characterization ... ")
		t0 = time.Now()
		vs, err := sys.CheckOptimalityFIP(ctx, -1, 5)
		if err != nil {
			return err
		}
		if len(vs) == 0 {
			fmt.Printf("OK (%.2fs)\n", time.Since(t0).Seconds())
		} else {
			fmt.Printf("FAILED (%.2fs)\n", time.Since(t0).Seconds())
			for _, v := range vs {
				fmt.Println("  ", v)
			}
			return fmt.Errorf("optimality check failed")
		}
	}
	fmt.Println("\nall checks passed")
	return nil
}

// runSweep streams the exhaustive SO(t) sweep — every failure pattern ×
// every initial vector — through the Runner's source-driven path with
// specification checking on, never materializing the scenario list.
func runSweep(stack eba.Stack, n, t int) error {
	src, err := eba.SourceSO(n, t, stack.Horizon())
	if err != nil {
		return err
	}
	total := "?"
	if c, ok := src.Count(); ok {
		total = fmt.Sprint(c)
	}
	fmt.Printf("streaming exhaustive SO(%d) spec sweep for %s (n=%d, horizon=%d, %s scenarios) ... ",
		t, stack.Name, n, stack.Horizon(), total)
	t0 := time.Now()
	runner := eba.NewRunner(stack,
		eba.WithParallelism(0),
		eba.WithBufferReuse(),
		eba.WithSpecCheck(eba.SpecOptions{RoundBound: stack.Horizon(), ValidityAllAgents: true}))
	runs, failures := 0, 0
	var firstErr error
	for oc := range runner.StreamFrom(context.Background(), src) {
		runs++
		if oc.Err != nil {
			failures++
			if firstErr == nil {
				firstErr = oc.Err
			}
		}
	}
	if failures > 0 {
		fmt.Printf("FAILED (%.2fs)\n", time.Since(t0).Seconds())
		return fmt.Errorf("sweep: %d of %d runs failed the EBA specification (first: %v)", failures, runs, firstErr)
	}
	fmt.Printf("OK: %d runs (%.2fs)\n", runs, time.Since(t0).Seconds())
	return nil
}
