package main

import "testing"

func TestCheckMinEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-safety"}); err != nil {
		t.Errorf("ebacheck min failed: %v", err)
	}
}

func TestCheckFIPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// fip includes the Theorem 7.5 check and the (expected) safety
	// violation report for full information.
	if err := run([]string{"-stack", "fip", "-n", "3", "-t", "1", "-safety"}); err != nil {
		t.Errorf("ebacheck fip failed: %v", err)
	}
}

// TestCheckSweepStreaming exercises the source-driven exhaustive sweep —
// the path the CI smoke step runs — without the slower knowledge checks.
func TestCheckSweepStreaming(t *testing.T) {
	if err := run([]string{"-stack", "min", "-n", "3", "-t", "1", "-sweep", "-knowledge=false"}); err != nil {
		t.Errorf("ebacheck -sweep failed: %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	if err := run([]string{"-stack", "bogus"}); err == nil {
		t.Error("unknown stack accepted")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
