// Command ebacoord coordinates a cross-machine sweep: it holds one job —
// a stack's exhaustive SO(t) sweep or model check, split into -stripes
// deterministic stripes — and serves the fabric wire protocol to any
// number of ebashard -worker processes. Workers pull stripe leases,
// heartbeat while they run, and upload sealed results; the coordinator
// verifies every upload (record digests, stripe membership, sealed
// footer) before trusting it, requeues the stripes of workers that go
// silent past the lease TTL so surviving workers steal them, and — when
// the last stripe lands — runs the canonical merge. The merged outcome
// stream (or verdict block) is bit-identical to a single-process run's.
//
//	ebacoord -stack fip -n 4 -t 1 -stripes 16 -spool /tmp/fab &
//	ebashard -worker http://localhost:8123   # on as many machines as you like
//
// Verified stripes and the merged output live in -spool; a coordinator
// restarted over the same spool re-verifies what's on disk and resumes
// with only the missing stripes outstanding.
//
// With -cache DIR the coordinator also hosts a shared result cache over
// that directory at <listen>/cache; workers that join with
// -cache-url http://<coordinator>/cache answer already-swept scenarios
// from it instead of re-executing them, and /status reports the store's
// traffic alongside every worker's own cache counters.
//
// Exit codes match ebashard's: 2 for verification failures (torn or
// tampered stripes, digest conflicts between duplicate uploads, failed
// verdicts), 3 for transport failures, 1 for everything else.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebacoord:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps an error to the command's exit code, mirroring ebashard:
// 2 verification, 3 transport, 1 otherwise.
func exitCode(err error) int {
	switch {
	case errors.Is(err, eba.ErrFabricVerification):
		return 2
	case errors.Is(err, eba.ErrFabricTransport):
		return 3
	default:
		return 1
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebacoord", flag.ContinueOnError)
	var (
		stackName = fs.String("stack", "fip", "protocol stack (see eba.Stacks)")
		n         = fs.Int("n", 3, "number of agents")
		t         = fs.Int("t", 1, "failure bound t")
		horizon   = fs.Int("horizon", 0, "execution horizon override (0 = the stack default)")
		stripes   = fs.Int("stripes", 16, "stripe count M — keep M well above the worker count")
		check     = fs.Bool("check", false, "distribute the model checker's enumeration instead of a sweep")
		spec      = fs.Bool("spec", true, "sweep jobs: workers spec-check every run")
		spool     = fs.String("spool", "", "spool directory for verified stripes and the merged output (required)")
		listen    = fs.String("listen", "127.0.0.1:8123", "address to serve the fabric protocol on (port 0 picks one)")
		leaseTTL  = fs.Duration("lease-ttl", 10*time.Second, "heartbeat TTL before a stripe lease expires and is requeued")
		parallel  = fs.Int("parallel", 0, "merge/verdict workers (0 = one per CPU; never changes the output)")
		timeout   = fs.Duration("timeout", 30*time.Second, "bound on server request headers and on shutdown")
		linger    = fs.Duration("linger", 2*time.Second, "how long to keep answering workers after the job ends, so they drain")
		out       = fs.String("out", "", "also copy the merged output here when the job completes (\"-\" for stdout)")
		cacheDir  = fs.String("cache", "", "host a shared result cache over this directory at <listen>/cache (workers join it with -cache-url)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spool == "" {
		return fmt.Errorf("-spool is required (it is where verified stripes and the merged output live)")
	}

	kind := eba.JobSweep
	if *check {
		kind = eba.JobCheck
	}
	job := eba.JobSpec{
		Kind:      kind,
		Stack:     *stackName,
		N:         *n,
		T:         *t,
		Horizon:   *horizon,
		Stripes:   *stripes,
		SpecCheck: *spec,
	}
	cfg := eba.CoordinatorConfig{
		Job:         job,
		SpoolDir:    *spool,
		LeaseTTL:    *leaseTTL,
		Parallelism: *parallel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *cacheDir != "" {
		store, err := eba.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		defer store.Close()
		cfg.CacheStore = store
	}
	coord, err := eba.NewCoordinator(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("%w: %v", eba.ErrFabricTransport, err)
	}
	srv := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: *timeout}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ebacoord: serving %s on http://%s\n", job, ln.Addr())

	// SIGTERM/SIGINT aborts the job; workers polling in see 410 "failed".
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if ok {
			cancel(fmt.Errorf("aborted by %v", s))
		}
	}()

	runErr := coord.Run(ctx)

	// The handlers keep answering after Run returns (410 with the final
	// phase), so a short linger lets every polling worker observe the
	// job's end instead of a connection refused.
	select {
	case err := <-serveErr:
		return fmt.Errorf("%w: serving: %v", eba.ErrFabricTransport, err)
	case <-time.After(*linger):
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *timeout)
	defer shutCancel()
	srv.Shutdown(shutCtx)

	status := coord.Status()
	fmt.Fprintf(os.Stderr, "ebacoord: phase %s: %d/%d stripes, %d leases, %d expirations, %d steals, %d rejects, %d duplicates\n",
		status.Phase, status.Stripes.Done, status.Stripes.Total,
		status.Counters.Leases, status.Counters.Expirations, status.Counters.Steals,
		status.Counters.Rejects, status.Counters.Duplicates)
	if status.Cache != nil {
		fmt.Fprintf(os.Stderr, "ebacoord: shared cache: %d hits, %d misses, %d puts, %d bytes served, %d written\n",
			status.Cache.Hits, status.Cache.Misses, status.Cache.Puts,
			status.Cache.BytesServed, status.Cache.BytesWritten)
	}

	if *out != "" && (status.Phase == eba.FabricComplete) {
		if err := copyMerged(coord.MergedPath(), *out); err != nil {
			if runErr == nil {
				runErr = err
			}
			fmt.Fprintln(os.Stderr, "ebacoord:", err)
		}
	}
	return runErr
}

// copyMerged copies the completed merged output to -out.
func copyMerged(src, dst string) error {
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	w, closeOut := io.Writer(os.Stdout), func() error { return nil }
	if dst != "-" {
		g, err := os.Create(dst)
		if err != nil {
			return err
		}
		w, closeOut = g, g.Close
	}
	if _, err := io.Copy(w, f); err != nil {
		closeOut()
		return err
	}
	return closeOut()
}
