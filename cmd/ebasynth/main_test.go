package main

import "testing"

func TestSynthMinEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-exchange", "min", "-n", "3", "-t", "1"}); err != nil {
		t.Errorf("ebasynth min failed: %v", err)
	}
}

func TestSynthBasicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-exchange", "basic", "-n", "3", "-t", "1"}); err != nil {
		t.Errorf("ebasynth basic failed: %v", err)
	}
}

func TestSynthErrors(t *testing.T) {
	if err := run([]string{"-exchange", "bogus"}); err == nil {
		t.Error("unknown exchange accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
