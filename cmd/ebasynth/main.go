// Command ebasynth derives a concrete action protocol from a
// knowledge-based program by epistemic fixpoint construction — the
// "epistemic synthesis" direction the paper's discussion proposes — and
// compares it against the paper's hand-written implementation. Exchange
// names resolve against the library registry.
//
// Usage:
//
//	ebasynth -exchange min -n 3 -t 1    # synthesize P0 over Emin, compare to Pmin
//	ebasynth -exchange basic -n 3 -t 1  # synthesize P0 over Ebasic, compare to Pbasic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	eba "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ebasynth:", err)
		os.Exit(1)
	}
}

// references maps a synthesizable exchange to the registered stack whose
// action protocol is the paper's hand-written implementation of P0 over
// it (Theorems 6.5 and 6.6).
var references = map[string]string{
	"min":   "min",
	"basic": "basic",
}

func run(args []string) error {
	fs := flag.NewFlagSet("ebasynth", flag.ContinueOnError)
	var (
		exName   = fs.String("exchange", "min", "information exchange: min or basic (registry names)")
		n        = fs.Int("n", 3, "number of agents")
		t        = fs.Int("t", 1, "failure bound t")
		parallel = fs.Int("parallel", 0, "model-checker workers (0 = one per CPU; never changes the result)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stackName, ok := references[*exName]
	if !ok {
		supported := make([]string, 0, len(references))
		for name := range references {
			supported = append(supported, name)
		}
		sort.Strings(supported)
		return fmt.Errorf("no synthesis reference for exchange %q (have %s; registry exchanges: %s)",
			*exName, strings.Join(supported, ", "), strings.Join(eba.ExchangeNames(), ", "))
	}
	stack, err := eba.NewStack(stackName, eba.WithN(*n), eba.WithT(*t))
	if err != nil {
		return err
	}
	reference := stack.Action

	fmt.Printf("synthesizing a concrete protocol from P0 over %s (n=%d, t=%d)...\n",
		stack.Exchange.Name(), *n, *t)
	t0 := time.Now()
	synth, sys, err := eba.Synthesize(context.Background(), stack, eba.ProgramP0, eba.WithCheckParallelism(*parallel))
	if err != nil {
		return err
	}
	fmt.Printf("  %d runs, %d reachable (agent, state) entries in %.2fs\n",
		len(sys.Runs), synth.Size(), time.Since(t0).Seconds())

	fmt.Printf("comparing against the paper's %s ... ", reference.Name())
	diffs := 0
	for _, res := range sys.Runs {
		for m := 0; m < sys.Horizon; m++ {
			for i := 0; i < sys.N; i++ {
				id := eba.AgentID(i)
				if synth.Act(id, res.States[m][i]) != reference.Act(id, res.States[m][i]) {
					diffs++
				}
			}
		}
	}
	if diffs == 0 {
		fmt.Println("identical on every reachable state")
		fmt.Printf("\nTheorem 6.%s recovered by synthesis.\n", map[string]string{"min": "5", "basic": "6"}[*exName])
		return nil
	}
	fmt.Printf("%d disagreements\n", diffs)
	return fmt.Errorf("synthesized protocol differs from %s", reference.Name())
}
