package eba

import (
	"context"

	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// The serving layer: a long-running HTTP daemon (cmd/ebaserve) exposing
// the Runner and the model checker as a service. Sweep responses are
// byte-identical to ebashard's stripe streams, check responses to the
// shared WriteVerdicts block; check and knowledge queries are answered
// from an LRU of built Systems with singleflight deduplication, backed
// by the result cache when one is configured. Admission control bounds
// in-flight requests (429 past the limit), concurrent builds, and
// per-request parallelism; Drain turns SIGTERM into a graceful
// finish-what-you-started shutdown; /metrics exposes the counters in
// the Prometheus text format.

// ServerConfig configures NewServer; the zero value serves with
// defaults.
type ServerConfig = serve.Config

// Server answers sweep, check, and knowledge requests over HTTP.
type Server = serve.Server

// NewServer validates the config and returns a ready serving layer;
// mount its Handler on an http.Server.
func NewServer(cfg ServerConfig) *Server { return serve.NewServer(cfg) }

// Serving request/response bodies, one pair per endpoint.
type (
	SweepRequest      = serve.SweepRequest
	CheckRequest      = serve.CheckRequest
	KnowledgeRequest  = serve.KnowledgeRequest
	KnowledgeResponse = serve.KnowledgeResponse
)

// ServeVerdictHeader is the response header naming a check's outcome
// ("ok" or "failed").
const ServeVerdictHeader = serve.VerdictHeader

// Knowledge query kinds accepted by KnowledgeRequest.Query.
const (
	QueryExists      = serve.QueryExists
	QueryKnowsExists = serve.QueryKnowsExists
	QueryKnowsCK     = serve.QueryKnowsCK
	QueryNonfaulty   = serve.QueryNonfaulty
	QueryDecided     = serve.QueryDecided
)

// LoadTestConfig tunes RunLoadTest; LoadTestSummary is its verified
// outcome (Err folds failures into the fabric error taxonomy).
type (
	LoadTestConfig  = loadtest.Config
	LoadTestSummary = loadtest.Summary
)

// RunLoadTest drives a serving base URL with a deterministic mix of
// concurrent sweep, check, and knowledge requests, verifying every
// response it can.
func RunLoadTest(ctx context.Context, cfg LoadTestConfig) (*LoadTestSummary, error) {
	return loadtest.Run(ctx, cfg)
}
